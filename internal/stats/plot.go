package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is an ASCII line plot with multiple series, used to regenerate
// the paper's figures in a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Add appends a series.
func (p *Plot) Add(name string, x, y []float64) {
	p.Series = append(p.Series, Series{Name: name, X: x, Y: y})
}

// String renders the plot.
func (p *Plot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.Series {
		for i := range s.X {
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return p.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Draw line segments between consecutive points.
		for i := 0; i+1 < len(s.X); i++ {
			x0, y0 := p.cell(s.X[i], s.Y[i], minX, maxX, minY, maxY, w, h)
			x1, y1 := p.cell(s.X[i+1], s.Y[i+1], minX, maxX, minY, maxY, w, h)
			drawLine(grid, x0, y0, x1, y1, mark)
		}
		if len(s.X) == 1 {
			x0, y0 := p.cell(s.X[0], s.Y[0], minX, maxX, minY, maxY, w, h)
			grid[y0][x0] = mark
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yHi := fmt.Sprintf("%.4g", maxY)
	yLo := fmt.Sprintf("%.4g", minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yHi)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	xLo := fmt.Sprintf("%.4g", minX)
	xHi := fmt.Sprintf("%.4g", maxX)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xLo, strings.Repeat(" ", gap), xHi)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

// cell maps a data point to grid coordinates (row 0 = top).
func (p *Plot) cell(x, y, minX, maxX, minY, maxY float64, w, h int) (cx, cy int) {
	cx = int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
	cy = h - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(h-1)))
	return clamp(cx, 0, w-1), clamp(cy, 0, h-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawLine draws a Bresenham segment.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, mark byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		grid[y0][x0] = mark
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
