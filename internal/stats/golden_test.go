package stats

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/stats -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with `go test ./internal/stats -update`)",
			name, got, want)
	}
}

// goldenTable exercises every Table feature: title, mixed cell types,
// float trimming, ragged row protection and the note line.
func goldenTable() *Table {
	t := NewTable("Miss cost by page size", "Page Size", "Elapsed (µs)", "Bus (µs)", "Clean", "Ratio")
	t.Add(128, 17.0, 4.4, true, 0.2588)
	t.Add(256, 21.29, 8.316, false, 0.39)
	t.Add(512, 30.5, 16.0, true, 0.5245901639344262)
	t.Add("all", 68.79, 28.716, "-", 1.0)
	t.Note = "columns mirror Table 1; ratios are bus/elapsed"
	return t
}

func TestTableGoldenString(t *testing.T) {
	checkGolden(t, "table_string", goldenTable().String())
}

func TestTableGoldenCSV(t *testing.T) {
	checkGolden(t, "table_csv", goldenTable().CSV())
}

// goldenPlot exercises multi-series rendering, line interpolation,
// single-point series, axis labels and the legend.
func goldenPlot() *Plot {
	var p Plot
	p.Title = "performance vs miss ratio"
	p.XLabel = "miss ratio (%)"
	p.YLabel = "normalized performance"
	p.Add("128B", []float64{0, 0.5, 1, 1.5, 2}, []float64{1, 0.93, 0.87, 0.82, 0.77})
	p.Add("256B", []float64{0, 0.5, 1, 1.5, 2}, []float64{1, 0.90, 0.82, 0.75, 0.69})
	p.Add("512B", []float64{0, 0.5, 1, 1.5, 2}, []float64{1, 0.86, 0.75, 0.66, 0.59})
	p.Add("measured", []float64{0.24}, []float64{0.87})
	return &p
}

func TestPlotGoldenString(t *testing.T) {
	checkGolden(t, "plot_string", goldenPlot().String())
}

// TestPlotGoldenEmpty pins the no-data degenerate form.
func TestPlotGoldenEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	checkGolden(t, "plot_empty", p.String())
}

// TestPlotGoldenFlat pins the constant-series path (min == max on both
// axes triggers the synthetic range widening).
func TestPlotGoldenFlat(t *testing.T) {
	var p Plot
	p.Title = "flat"
	p.Width = 24
	p.Height = 6
	p.Add("const", []float64{1, 1, 1}, []float64{5, 5, 5})
	checkGolden(t, "plot_flat", p.String())
}
