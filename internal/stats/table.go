// Package stats renders experiment results: aligned text tables, CSV,
// and ASCII line plots used to regenerate the paper's figures in a
// terminal.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row, formatting each cell with %v (floats with %g are
// better served by AddF).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders a float with up to 4 significant decimals, without
// trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not
// needed for the numeric/identifier cells the experiments emit).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
