package cache

import "vmp/internal/trace"

// Simulate replays a reference stream through a single cache with no
// timing model, the way the paper's cold-start miss-ratio study
// (Figure 4) drives its trace simulations. Misses fill the suggested
// victim slot; write misses to present pages are granted ownership in
// place. The cache starts cold.
//
// Permission flags are set permissively: the miss-ratio study is about
// locality, not protection.
func Simulate(cfg Config, src trace.Source) Stats {
	c := New(cfg)
	Replay(c, src)
	return c.Stats()
}

// Replay drives an existing cache with a reference stream, using the
// same fill policy as Simulate. It allows warm-start studies and
// multi-stream experiments on one cache.
func Replay(c *Cache, src trace.Source) {
	for {
		r, ok := src.Next()
		if !ok {
			return
		}
		acc := Access{Write: r.IsWrite(), Super: r.Super}
		id, res := c.Lookup(r.ASID, r.VAddr, acc)
		switch res {
		case Hit:
		case Miss:
			victim := c.SuggestVictim(r.VAddr)
			flags := fillFlags(r)
			c.Fill(victim, r.ASID, r.VAddr, flags)
		case WriteMiss:
			// Uniprocessor ownership grant: set Exclusive in place and
			// perform the write.
			st := c.SlotState(id)
			c.SetFlags(id, st.Flags|Exclusive|Modified)
		case ProtFault:
			// The permissive fill policy never faults; if it does, the
			// configuration is inconsistent.
			panic("cache: protection fault during Replay")
		}
	}
}

// fillFlags returns fully permissive protection (the miss-ratio study is
// about locality, not protection), taking ownership up front on a write
// miss as the uniprocessor handler would.
func fillFlags(r trace.Ref) Flags {
	flags := UserRead | UserWrite | SupWrite
	if r.IsWrite() {
		flags |= Exclusive | Modified
	}
	return flags
}
