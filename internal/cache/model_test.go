package cache

import (
	"fmt"
	"testing"

	"vmp/internal/sim"
)

// Model-based test: drive the cache with random operations and check
// every observable against a reference model (a map of resident pages
// plus an LRU list per row). Any divergence reports the operation
// sequence number for reproduction.

type modelEntry struct {
	asid  uint8
	vpage uint32
	flags Flags
}

type refModel struct {
	cfg Config
	// rows[r] holds entries in LRU order (front = least recent).
	rows [][]modelEntry
}

func newRefModel(cfg Config) *refModel {
	return &refModel{cfg: cfg, rows: make([][]modelEntry, cfg.Rows)}
}

func (m *refModel) row(vpage uint32) int { return int(vpage) & (m.cfg.Rows - 1) }

func (m *refModel) find(asid uint8, vpage uint32) int {
	r := m.row(vpage)
	for i, e := range m.rows[r] {
		if e.asid == asid && e.vpage == vpage {
			return i
		}
	}
	return -1
}

func (m *refModel) touch(asid uint8, vpage uint32) {
	r := m.row(vpage)
	i := m.find(asid, vpage)
	e := m.rows[r][i]
	m.rows[r] = append(append(append([]modelEntry{}, m.rows[r][:i]...), m.rows[r][i+1:]...), e)
}

func (m *refModel) insert(asid uint8, vpage uint32, flags Flags) {
	r := m.row(vpage)
	if len(m.rows[r]) == m.cfg.Assoc {
		m.rows[r] = m.rows[r][1:] // evict LRU
	}
	m.rows[r] = append(m.rows[r], modelEntry{asid, vpage, flags})
}

func (m *refModel) remove(asid uint8, vpage uint32) {
	r := m.row(vpage)
	if i := m.find(asid, vpage); i >= 0 {
		m.rows[r] = append(m.rows[r][:i], m.rows[r][i+1:]...)
	}
}

func TestCacheAgainstReferenceModel(t *testing.T) {
	cfg := Config{PageSize: 256, Rows: 8, Assoc: 2}
	c := New(cfg)
	model := newRefModel(cfg)
	rnd := sim.NewRand(42)

	const asids = 3
	const pages = 64 // virtual pages in play

	for op := 0; op < 20000; op++ {
		asid := uint8(rnd.Intn(asids))
		vpage := uint32(rnd.Intn(pages))
		vaddr := vpage*256 + uint32(rnd.Intn(64))*4
		ctx := func() string { return fmt.Sprintf("op %d asid=%d vpage=%d", op, asid, vpage) }

		switch rnd.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // lookup (read, permissive pages)
			_, res := c.Lookup(asid, vaddr, Access{})
			inModel := model.find(asid, vpage) >= 0
			if (res == Hit) != inModel {
				t.Fatalf("%s: lookup %v but model resident=%v", ctx(), res, inModel)
			}
			if res == Hit {
				model.touch(asid, vpage)
			}
		case 6, 7: // fill after a forced miss
			if model.find(asid, vpage) >= 0 {
				continue
			}
			victim := c.SuggestVictim(vaddr)
			st := c.SlotState(victim)
			if st.Flags.Has(Valid) {
				// The hardware suggestion must match the model's LRU.
				r := model.row(vpage)
				if len(model.rows[r]) < cfg.Assoc {
					t.Fatalf("%s: victim valid but model row not full", ctx())
				}
				lru := model.rows[r][0]
				if st.ASID != lru.asid || st.VPage != lru.vpage {
					t.Fatalf("%s: victim <%d,%d> but model LRU <%d,%d>",
						ctx(), st.ASID, st.VPage, lru.asid, lru.vpage)
				}
			}
			c.Fill(victim, asid, vaddr, UserRead|UserWrite|SupWrite)
			model.insert(asid, vpage, UserRead|UserWrite|SupWrite)
		case 8: // invalidate if resident
			if slot, ok := c.FindVirtual(asid, vaddr); ok {
				c.Invalidate(slot)
				model.remove(asid, vpage)
			} else if model.find(asid, vpage) >= 0 {
				t.Fatalf("%s: model resident, cache not", ctx())
			}
		case 9: // FindVirtual agreement
			_, ok := c.FindVirtual(asid, vaddr)
			if ok != (model.find(asid, vpage) >= 0) {
				t.Fatalf("%s: FindVirtual=%v disagrees with model", ctx(), ok)
			}
		}
	}

	// Final sweep: every model entry is resident and vice versa.
	total := 0
	for r := range model.rows {
		for _, e := range model.rows[r] {
			total++
			if _, ok := c.FindVirtual(e.asid, e.vpage*256); !ok {
				t.Errorf("model entry <%d,%d> missing from cache", e.asid, e.vpage)
			}
		}
	}
	live := 0
	c.ValidSlots(func(_ SlotID, s Slot) {
		live++
		if model.find(s.ASID, s.VPage) < 0 {
			t.Errorf("cache slot <%d,%d> missing from model", s.ASID, s.VPage)
		}
	})
	if live != total {
		t.Errorf("cache holds %d slots, model %d", live, total)
	}
}
