package cache

import (
	"testing"
	"testing/quick"

	"vmp/internal/trace"
	"vmp/internal/workload"
)

func cfg256() Config { return Geometry(128<<10, 256, 4) } // 128 rows × 4 × 256B

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{PageSize: 128, Rows: 16, Assoc: 1},
		{PageSize: 256, Rows: 128, Assoc: 4},
		{PageSize: 512, Rows: 256, Assoc: 4},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	bad := []Config{
		{PageSize: 100, Rows: 16, Assoc: 1},
		{PageSize: 128, Rows: 0, Assoc: 1},
		{PageSize: 128, Rows: 24, Assoc: 1},
		{PageSize: 128, Rows: 16, Assoc: 0},
		{PageSize: 0, Rows: 16, Assoc: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v validated", c)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := Geometry(256<<10, 256, 4)
	if c.Rows != 256 || c.Size() != 256<<10 || c.Slots() != 1024 {
		t.Errorf("Geometry gave %+v size=%d", c, c.Size())
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(cfg256())
	id, res := c.Lookup(1, 0x1000, Access{})
	if res != Miss || id != -1 {
		t.Fatalf("cold lookup = %v, %v", id, res)
	}
	v := c.SuggestVictim(0x1000)
	c.Fill(v, 1, 0x1000, UserRead)
	id, res = c.Lookup(1, 0x1000, Access{})
	if res != Hit || id != v {
		t.Fatalf("after fill: %v, %v", id, res)
	}
	// Same page, different offset, still hits.
	if _, res = c.Lookup(1, 0x10ff, Access{}); res != Hit {
		t.Errorf("same-page offset missed: %v", res)
	}
	// Next page misses.
	if _, res = c.Lookup(1, 0x1100, Access{}); res != Miss {
		t.Errorf("next page: %v", res)
	}
}

func TestASIDMismatchMisses(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x1000)
	c.Fill(v, 1, 0x1000, UserRead)
	if _, res := c.Lookup(2, 0x1000, Access{}); res != Miss {
		t.Errorf("different ASID hit: %v", res)
	}
}

func TestWriteMissOnSharedPage(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x2000)
	c.Fill(v, 1, 0x2000, UserRead|UserWrite) // shared: no Exclusive
	id, res := c.Lookup(1, 0x2000, Access{Write: true})
	if res != WriteMiss || id != v {
		t.Fatalf("write to shared = %v, %v", id, res)
	}
	// Grant ownership; the write then hits and sets Modified.
	c.SetFlags(id, c.SlotState(id).Flags|Exclusive)
	if _, res = c.Lookup(1, 0x2000, Access{Write: true}); res != Hit {
		t.Fatalf("write after ownership = %v", res)
	}
	if !c.SlotState(id).Flags.Has(Modified) {
		t.Error("Modified not set by write hit")
	}
}

func TestProtection(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x3000)
	// Supervisor-only page.
	c.Fill(v, 1, 0x3000, SupWrite|Exclusive)
	if _, res := c.Lookup(1, 0x3000, Access{}); res != ProtFault {
		t.Errorf("user read of supervisor page: %v", res)
	}
	if _, res := c.Lookup(1, 0x3000, Access{Super: true}); res != Hit {
		t.Errorf("supervisor read: %v", res)
	}
	if _, res := c.Lookup(1, 0x3000, Access{Super: true, Write: true}); res != Hit {
		t.Errorf("supervisor write with SupWrite: %v", res)
	}

	// Read-only user page: user write faults, supervisor write faults
	// without SupWrite.
	v2 := c.SuggestVictim(0x4000)
	c.Fill(v2, 1, 0x4000, UserRead|Exclusive)
	if _, res := c.Lookup(1, 0x4000, Access{Write: true}); res != ProtFault {
		t.Errorf("user write of read-only page: %v", res)
	}
	if _, res := c.Lookup(1, 0x4000, Access{Super: true, Write: true}); res != ProtFault {
		t.Errorf("supervisor write without SupWrite: %v", res)
	}
}

func TestLRUVictim(t *testing.T) {
	cfg := Config{PageSize: 256, Rows: 1, Assoc: 4}
	c := New(cfg)
	// Fill all four ways of the single row.
	addrs := []uint32{0x0000, 0x0100, 0x0200, 0x0300}
	for _, a := range addrs {
		c.Fill(c.SuggestVictim(a), 1, a, UserRead)
	}
	// Touch all but addrs[2].
	c.Lookup(1, addrs[0], Access{})
	c.Lookup(1, addrs[1], Access{})
	c.Lookup(1, addrs[3], Access{})
	v := c.SuggestVictim(0x0400)
	if got := c.SlotState(v).VPage; got != 2 {
		t.Errorf("LRU victim holds page %d, want 2", got)
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	cfg := Config{PageSize: 256, Rows: 1, Assoc: 4}
	c := New(cfg)
	c.Fill(0, 1, 0, UserRead)
	c.Fill(1, 1, 0x100, UserRead)
	v := c.SuggestVictim(0x400)
	if v != 2 && v != 3 {
		t.Errorf("victim %d, want an invalid way", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x5000)
	c.Fill(v, 1, 0x5000, UserRead)
	c.Invalidate(v)
	if _, res := c.Lookup(1, 0x5000, Access{}); res != Miss {
		t.Errorf("after invalidate: %v", res)
	}
	if _, ok := c.FindVirtual(1, 0x5000); ok {
		t.Error("FindVirtual found invalidated slot")
	}
}

func TestDowngrade(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x6000)
	c.Fill(v, 1, 0x6000, UserRead|UserWrite|Exclusive|Modified)
	c.Downgrade(v)
	f := c.SlotState(v).Flags
	if f.Has(Exclusive) || f.Has(Modified) {
		t.Errorf("flags after downgrade: %v", f)
	}
	if !f.Has(Valid) || !f.Has(UserRead) {
		t.Errorf("downgrade lost validity/permissions: %v", f)
	}
	// A write now requires re-negotiating ownership.
	if _, res := c.Lookup(1, 0x6000, Access{Write: true}); res != WriteMiss {
		t.Errorf("write after downgrade: %v", res)
	}
}

func TestFindVirtual(t *testing.T) {
	c := New(cfg256())
	v := c.SuggestVictim(0x7000)
	c.Fill(v, 3, 0x7000, UserRead)
	if id, ok := c.FindVirtual(3, 0x70ab); !ok || id != v {
		t.Errorf("FindVirtual = %v, %v", id, ok)
	}
	if _, ok := c.FindVirtual(4, 0x7000); ok {
		t.Error("FindVirtual matched wrong ASID")
	}
}

func TestRowConflict(t *testing.T) {
	// 4-way: five pages mapping to the same row evict one another.
	cfg := Config{PageSize: 256, Rows: 16, Assoc: 4}
	c := New(cfg)
	rowStride := uint32(cfg.PageSize * cfg.Rows)
	for i := 0; i < 5; i++ {
		a := uint32(i) * rowStride // all map to row 0
		if _, res := c.Lookup(1, a, Access{}); res != Miss {
			t.Fatalf("fill %d: %v", i, res)
		}
		c.Fill(c.SuggestVictim(a), 1, a, UserRead)
	}
	hits := 0
	for i := 0; i < 5; i++ {
		if _, res := c.Lookup(1, uint32(i)*rowStride, Access{}); res == Hit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("%d of 5 conflicting pages resident, want 4", hits)
	}
}

func TestFillWrongRowPanics(t *testing.T) {
	c := New(cfg256())
	defer func() {
		if recover() == nil {
			t.Error("Fill outside row did not panic")
		}
	}()
	// vaddr 0 maps to row 0 (slots 0-3); slot 100 is another row.
	c.Fill(100, 1, 0, UserRead)
}

func TestValidSlotsAndInvalidateAll(t *testing.T) {
	c := New(cfg256())
	c.Fill(c.SuggestVictim(0x1000), 1, 0x1000, UserRead)
	c.Fill(c.SuggestVictim(0x2000), 1, 0x2000, UserRead)
	n := 0
	c.ValidSlots(func(SlotID, Slot) { n++ })
	if n != 2 {
		t.Errorf("ValidSlots visited %d, want 2", n)
	}
	c.InvalidateAll()
	n = 0
	c.ValidSlots(func(SlotID, Slot) { n++ })
	if n != 0 {
		t.Errorf("slots after InvalidateAll: %d", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(cfg256())
	c.Lookup(1, 0, Access{})                             // miss
	c.Fill(c.SuggestVictim(0), 1, 0, UserRead|UserWrite) // fill
	c.Lookup(1, 0, Access{})                             // hit
	c.Lookup(1, 0, Access{Write: true})                  // write miss (no ownership)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.WriteMisses != 1 || st.Fills != 1 {
		t.Errorf("stats %+v", st)
	}
	if got := st.MissRatio(); got != 2.0/3.0 {
		t.Errorf("MissRatio = %v", got)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestFlagsString(t *testing.T) {
	f := Valid | Modified | UserRead
	if got := f.String(); got != "VM..r." {
		t.Errorf("Flags.String() = %q", got)
	}
}

// Property: a filled page always hits immediately afterwards with a
// permitted access, for any geometry and address.
func TestFillThenHitProperty(t *testing.T) {
	f := func(addr uint32, asid uint8, sizeSel, pageSel uint8) bool {
		sizes := []int{64 << 10, 128 << 10, 256 << 10}
		pages := []int{128, 256, 512}
		cfg := Geometry(sizes[int(sizeSel)%3], pages[int(pageSel)%3], 4)
		c := New(cfg)
		v := c.SuggestVictim(addr)
		c.Fill(v, asid, addr, UserRead|UserWrite|SupWrite|Exclusive)
		for _, acc := range []Access{{}, {Write: true}, {Super: true}, {Super: true, Write: true}} {
			if _, res := c.Lookup(asid, addr, acc); res != Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the sum of hits and misses equals references replayed.
func TestReplayCountsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		refs, err := workload.Generate(workload.Edit, seed, 20_000)
		if err != nil {
			return false
		}
		st := Simulate(cfg256(), trace.NewSliceSource(refs))
		return st.Hits+st.Misses+st.WriteMisses == uint64(len(refs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// The headline calibration: an ATUM-like trace at 128KB/256B/4-way must
// land in the sub-percent miss-ratio regime the paper reports, and the
// miss ratio must fall (weakly) as cache size grows.
func TestMissRatioRegime(t *testing.T) {
	refs, err := workload.Generate(workload.Edit, 11, workload.DefaultTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 1
	for _, size := range []int{64 << 10, 128 << 10, 256 << 10} {
		st := Simulate(Geometry(size, 256, 4), trace.NewSliceSource(refs))
		mr := st.MissRatio()
		if mr > prev*1.05 { // allow tiny non-monotonic noise
			t.Errorf("miss ratio rose with cache size: %v at %dKB (prev %v)", mr, size>>10, prev)
		}
		prev = mr
		if size == 128<<10 && (mr < 0.0005 || mr > 0.02) {
			t.Errorf("128KB/256B miss ratio %.4f outside the paper's regime", mr)
		}
	}
}

func TestSimulateSequentialSpatialLocality(t *testing.T) {
	// A pure sequential walk should miss exactly once per page.
	refs := workload.Sequential(1, 0, 4096, trace.Read) // 16KB walk
	st := Simulate(Geometry(64<<10, 256, 4), trace.NewSliceSource(refs))
	wantMisses := uint64(16 << 10 / 256)
	if st.Misses != wantMisses {
		t.Errorf("sequential misses = %d, want %d", st.Misses, wantMisses)
	}
}

func TestSimulateStrideThrashing(t *testing.T) {
	// Stride = page size: every ref a new page; with a footprint far
	// beyond the cache every reference misses.
	refs := workload.Stride(1, 0, 4096, 512, trace.Read) // 2MB span, 512B stride
	st := Simulate(Geometry(64<<10, 512, 4), trace.NewSliceSource(refs))
	if st.Misses != 4096 {
		t.Errorf("stride misses = %d, want 4096", st.Misses)
	}
}
