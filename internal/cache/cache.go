// Package cache models VMP's virtually addressed cache hardware.
//
// The cache is addressed by <ASID, virtual address>: no translation
// happens on the processor-to-cache path, which is what gives VMP its
// single-master, zero-wait-state processor connection. Geometry follows
// the prototype: page sizes of 128, 256 or 512 bytes, associativity 1-4
// ("number of sets" in the paper's terminology), and 16-256 pages per
// way, for total sizes of 64-256 KB.
//
// The hardware keeps, per slot: the tag, LRU state used to *suggest* a
// replacement victim, and the flag bits the paper lists (valid,
// modified, exclusive-ownership, supervisor-writable, user-readable,
// user-writable). Everything else — physical addresses, page states,
// the reverse phys-to-slot map — is software state owned by the miss
// handler (package core), exactly as in the paper: the bus monitor and
// miss handler never read the cache tags.
package cache

import (
	"fmt"

	"vmp/internal/stats"
)

// Flags is the per-slot flag word.
type Flags uint8

// Per-slot hardware flags from Section 4 of the paper.
const (
	Valid     Flags = 1 << iota // slot holds a cache page
	Modified                    // written since load
	Exclusive                   // this cache owns the page (private)
	SupWrite                    // supervisor may write
	UserRead                    // user mode may read
	UserWrite                   // user mode may write
)

// Has reports whether all bits in f are set.
func (f Flags) Has(bits Flags) bool { return f&bits == bits }

// String renders the flag word as "VMESWRU"-style letters.
func (f Flags) String() string {
	b := []byte("......")
	if f.Has(Valid) {
		b[0] = 'V'
	}
	if f.Has(Modified) {
		b[1] = 'M'
	}
	if f.Has(Exclusive) {
		b[2] = 'E'
	}
	if f.Has(SupWrite) {
		b[3] = 'S'
	}
	if f.Has(UserRead) {
		b[4] = 'r'
	}
	if f.Has(UserWrite) {
		b[5] = 'w'
	}
	return string(b)
}

// Config fixes the cache geometry.
type Config struct {
	PageSize int // bytes per cache page: 128, 256 or 512 in the prototype
	Rows     int // pages per way ("pages per set"), a power of two
	Assoc    int // ways ("sets" in the paper), 1-4 in the prototype
}

// Validate checks the geometry is usable.
func (c Config) Validate() error {
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("cache: page size %d not a positive power of two", c.PageSize)
	}
	if c.Rows <= 0 || c.Rows&(c.Rows-1) != 0 {
		return fmt.Errorf("cache: rows %d not a positive power of two", c.Rows)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d", c.Assoc)
	}
	return nil
}

// Size returns the total cache capacity in bytes.
func (c Config) Size() int { return c.PageSize * c.Rows * c.Assoc }

// Slots returns the number of cache slots.
func (c Config) Slots() int { return c.Rows * c.Assoc }

// Geometry returns a Config for a total size and page size at the given
// associativity, e.g. Geometry(128<<10, 256, 4).
func Geometry(totalSize, pageSize, assoc int) Config {
	return Config{PageSize: pageSize, Rows: totalSize / (pageSize * assoc), Assoc: assoc}
}

// SlotID identifies a cache slot: row*assoc + way.
type SlotID int

// Access describes one processor reference for permission checking.
type Access struct {
	Write bool
	Super bool
}

// Result classifies a cache lookup.
type Result int

// Lookup results.
const (
	// Hit: the reference completes at processor speed.
	Hit Result = iota
	// Miss: no valid slot matches <ASID, page>.
	Miss
	// WriteMiss: a matching slot exists but the processor writes
	// without ownership (Exclusive clear). The miss handler must
	// negotiate ownership (assert-ownership bus transaction).
	WriteMiss
	// ProtFault: a matching slot exists but the access violates the
	// protection flags; the operating system gets control.
	ProtFault
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case WriteMiss:
		return "write-miss"
	case ProtFault:
		return "prot-fault"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Slot is the externally visible state of one cache slot.
type Slot struct {
	ASID  uint8
	VPage uint32 // virtual address / page size
	Flags Flags
}

type slot struct {
	Slot
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	WriteMisses uint64 // ownership (write-to-shared) misses
	ProtFaults  uint64
	Fills       uint64
	Invalidates uint64
	Downgrades  uint64
}

// MissRatio returns (Misses+WriteMisses) / references.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses + s.WriteMisses
	if total == 0 {
		return 0
	}
	return float64(s.Misses+s.WriteMisses) / float64(total)
}

// cacheCounters is the recorder-backed counter set for one cache.
type cacheCounters struct {
	hits, misses, writeMisses, protFaults *stats.Counter
	fills, invalidates, downgrades        *stats.Counter
}

func bindCacheCounters(rec *stats.Recorder, prefix string) cacheCounters {
	return cacheCounters{
		hits:        rec.Counter(prefix + "hits"),
		misses:      rec.Counter(prefix + "misses"),
		writeMisses: rec.Counter(prefix + "write-misses"),
		protFaults:  rec.Counter(prefix + "prot-faults"),
		fills:       rec.Counter(prefix + "fills"),
		invalidates: rec.Counter(prefix + "invalidates"),
		downgrades:  rec.Counter(prefix + "downgrades"),
	}
}

// Cache is the cache hardware model. Create with New.
type Cache struct {
	cfg   Config
	slots []slot // rows × assoc, row-major
	tick  uint64
	ctr   cacheCounters
}

// New builds a cache; it panics on an invalid geometry (a configuration
// bug, not a runtime condition). The cache counts events into a private
// recorder until BindRecorder attaches it to a run's sink.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:   cfg,
		slots: make([]slot, cfg.Slots()),
		ctr:   bindCacheCounters(stats.NewRecorder(), "cache/"),
	}
}

// BindRecorder re-registers the cache's event counters in a per-run
// metrics sink under the given name prefix (e.g. "board0/cache/").
// Call it before the simulation starts; counts already accumulated stay
// behind in the previous sink.
func (c *Cache) BindRecorder(rec *stats.Recorder, prefix string) {
	c.ctr = bindCacheCounters(rec, prefix)
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        uint64(c.ctr.hits.Value()),
		Misses:      uint64(c.ctr.misses.Value()),
		WriteMisses: uint64(c.ctr.writeMisses.Value()),
		ProtFaults:  uint64(c.ctr.protFaults.Value()),
		Fills:       uint64(c.ctr.fills.Value()),
		Invalidates: uint64(c.ctr.invalidates.Value()),
		Downgrades:  uint64(c.ctr.downgrades.Value()),
	}
}

// ResetStats zeroes the event counters (contents are untouched).
func (c *Cache) ResetStats() {
	for _, ctr := range []*stats.Counter{
		c.ctr.hits, c.ctr.misses, c.ctr.writeMisses, c.ctr.protFaults,
		c.ctr.fills, c.ctr.invalidates, c.ctr.downgrades,
	} {
		ctr.Reset()
	}
}

// VPage converts a virtual address to its cache-page number.
func (c *Cache) VPage(vaddr uint32) uint32 { return vaddr / uint32(c.cfg.PageSize) }

func (c *Cache) row(vpage uint32) int { return int(vpage) & (c.cfg.Rows - 1) }

// Lookup performs one reference. On Hit with a write access, the slot's
// Modified bit is set, as the hardware would. The returned SlotID is the
// matching slot for Hit/WriteMiss/ProtFault and invalid (-1) for Miss.
//
//vmplint:hotpath
func (c *Cache) Lookup(asid uint8, vaddr uint32, acc Access) (SlotID, Result) {
	vpage := c.VPage(vaddr)
	row := c.row(vpage)
	base := row * c.cfg.Assoc
	for way := 0; way < c.cfg.Assoc; way++ {
		s := &c.slots[base+way]
		if !s.Flags.Has(Valid) || s.ASID != asid || s.VPage != vpage {
			continue
		}
		id := SlotID(base + way)
		if !c.permitted(s.Flags, acc) {
			c.ctr.protFaults.Inc()
			return id, ProtFault
		}
		if acc.Write && !s.Flags.Has(Exclusive) {
			c.ctr.writeMisses.Inc()
			return id, WriteMiss
		}
		c.tick++
		s.lastUse = c.tick
		if acc.Write {
			s.Flags |= Modified
		}
		c.ctr.hits.Inc()
		return id, Hit
	}
	c.ctr.misses.Inc()
	return -1, Miss
}

// permitted applies the protection flags to an access.
//
//vmplint:hotpath
func (c *Cache) permitted(f Flags, acc Access) bool {
	if acc.Super {
		// Supervisor reads are always allowed; writes need SupWrite.
		return !acc.Write || f.Has(SupWrite)
	}
	if acc.Write {
		return f.Has(UserWrite)
	}
	return f.Has(UserRead)
}

// SuggestVictim returns the hardware's suggested replacement slot for a
// fill of vaddr: an invalid slot in the row if one exists, otherwise the
// least recently used slot.
//
//vmplint:hotpath
func (c *Cache) SuggestVictim(vaddr uint32) SlotID {
	row := c.row(c.VPage(vaddr))
	base := row * c.cfg.Assoc
	best := base
	for way := 0; way < c.cfg.Assoc; way++ {
		s := &c.slots[base+way]
		if !s.Flags.Has(Valid) {
			return SlotID(base + way)
		}
		if s.lastUse < c.slots[best].lastUse {
			best = base + way
		}
	}
	return SlotID(best)
}

// Fill loads a slot with a new page and flags. The caller (the miss
// handler) is responsible for having written back or invalidated the
// previous occupant.
func (c *Cache) Fill(id SlotID, asid uint8, vaddr uint32, flags Flags) {
	vpage := c.VPage(vaddr)
	if c.row(vpage)*c.cfg.Assoc > int(id) || int(id) >= (c.row(vpage)+1)*c.cfg.Assoc {
		panic(fmt.Sprintf("cache: Fill of slot %d outside row for vaddr %#x", id, vaddr))
	}
	c.tick++
	c.slots[id] = slot{
		Slot:    Slot{ASID: asid, VPage: vpage, Flags: flags | Valid},
		lastUse: c.tick,
	}
	c.ctr.fills.Inc()
}

// Invalidate clears a slot.
func (c *Cache) Invalidate(id SlotID) {
	c.slots[id] = slot{}
	c.ctr.invalidates.Inc()
}

// Downgrade clears Exclusive (and Modified) on a slot, making the copy
// shared read-only with respect to ownership; protection flags remain.
// The caller must have written the page back if it was modified.
func (c *Cache) Downgrade(id SlotID) {
	c.slots[id].Flags &^= Exclusive | Modified
	c.ctr.downgrades.Inc()
}

// ClearModified clears only the Modified bit (after a write-back that
// retains ownership).
func (c *Cache) ClearModified(id SlotID) { c.slots[id].Flags &^= Modified }

// SetFlags replaces the permission/ownership flags of a slot, keeping
// Valid.
func (c *Cache) SetFlags(id SlotID, flags Flags) {
	c.slots[id].Flags = flags | Valid
}

// SlotState returns a copy of the slot's visible state.
func (c *Cache) SlotState(id SlotID) Slot { return c.slots[id].Slot }

// FindVirtual returns the slot holding <asid, page of vaddr>, if any,
// regardless of permissions.
func (c *Cache) FindVirtual(asid uint8, vaddr uint32) (SlotID, bool) {
	vpage := c.VPage(vaddr)
	base := c.row(vpage) * c.cfg.Assoc
	for way := 0; way < c.cfg.Assoc; way++ {
		s := &c.slots[base+way]
		if s.Flags.Has(Valid) && s.ASID == asid && s.VPage == vpage {
			return SlotID(base + way), true
		}
	}
	return -1, false
}

// ValidSlots calls fn for every valid slot; fn must not mutate the
// cache. Used by the miss handler's recovery path (FIFO overflow) and
// by tests.
func (c *Cache) ValidSlots(fn func(SlotID, Slot)) {
	for i := range c.slots {
		if c.slots[i].Flags.Has(Valid) {
			fn(SlotID(i), c.slots[i].Slot)
		}
	}
}

// InvalidateAll clears the whole cache (used by tests and by the
// FIFO-overflow recovery path's conservative variant).
func (c *Cache) InvalidateAll() {
	for i := range c.slots {
		if c.slots[i].Flags.Has(Valid) {
			c.Invalidate(SlotID(i))
		}
	}
}
