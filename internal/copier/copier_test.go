package copier

import (
	"testing"

	"vmp/internal/bus"
	"vmp/internal/sim"
)

func TestRunSynchronous(t *testing.T) {
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 0)
	var end sim.Time
	eng.Spawn("cpu", func(p *sim.Process) {
		res := c.Run(p, bus.Transaction{Op: bus.ReadShared, PAddr: 0, Bytes: 256})
		if res.Aborted {
			t.Error("aborted")
		}
		end = p.Now()
	})
	eng.Run()
	want := b.Timing().TransferTime(bus.ReadShared, 256)
	if end != want {
		t.Errorf("Run took %v, want %v", end, want)
	}
	st := c.Stats()
	if st.Transfers != 1 || st.BytesMoved != 256 || st.Aborted != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestOverlapWithCPU(t *testing.T) {
	// The CPU starts a transfer, does bookkeeping that is shorter than
	// the transfer, then waits: total elapsed must equal the transfer
	// time, not the sum.
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 0)
	xfer := b.Timing().TransferTime(bus.ReadShared, 512)
	bookkeeping := xfer / 2
	var end sim.Time
	eng.Spawn("cpu", func(p *sim.Process) {
		c.Start(bus.Transaction{Op: bus.ReadShared, PAddr: 0, Bytes: 512})
		p.Delay(bookkeeping)
		c.Wait(p)
		end = p.Now()
	})
	eng.Run()
	if end != xfer {
		t.Errorf("overlapped elapsed %v, want %v", end, xfer)
	}
}

func TestWaitAfterCompletion(t *testing.T) {
	// Bookkeeping longer than the transfer: Wait returns immediately.
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 0)
	xfer := b.Timing().TransferTime(bus.ReadShared, 128)
	var end sim.Time
	eng.Spawn("cpu", func(p *sim.Process) {
		c.Start(bus.Transaction{Op: bus.ReadShared, PAddr: 0, Bytes: 128})
		p.Delay(2 * xfer)
		c.Wait(p)
		end = p.Now()
	})
	eng.Run()
	if end != 2*xfer {
		t.Errorf("elapsed %v, want %v", end, 2*xfer)
	}
	if eng.Live() != 0 {
		t.Errorf("leaked %d processes", eng.Live())
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 0)
	eng.Spawn("cpu", func(p *sim.Process) {
		c.Start(bus.Transaction{Op: bus.ReadShared, PAddr: 0, Bytes: 128})
		defer func() {
			if recover() == nil {
				t.Error("second Start did not panic")
			}
		}()
		c.Start(bus.Transaction{Op: bus.ReadShared, PAddr: 0, Bytes: 128})
	})
	eng.Run()
}

func TestCopierRequesterStamped(t *testing.T) {
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 3)
	eng.Spawn("cpu", func(p *sim.Process) {
		c.Run(p, bus.Transaction{Op: bus.WriteBack, PAddr: 0, Bytes: 256})
	})
	eng.Run()
	if got := b.BoardBusyTime(3); got == 0 {
		t.Error("transfer not charged to board 3")
	}
}

// The headline bandwidth comparison (Section 2): the block copier should
// reach ~40 MB/s on the bus while a CPU copy loop manages < 5 MB/s.
func TestBandwidthAblation(t *testing.T) {
	eng := sim.NewEngine()
	b := bus.New(eng)
	c := New(eng, b, 0)
	const block = 512
	const n = 64 // 32 KB total
	var blockElapsed, cpuElapsed sim.Time
	eng.Spawn("cpu", func(p *sim.Process) {
		start := p.Now()
		for i := 0; i < n; i++ {
			c.Run(p, bus.Transaction{Op: bus.ReadShared, PAddr: uint32(i * block), Bytes: block})
		}
		blockElapsed = p.Now() - start

		start = p.Now()
		for i := 0; i < n; i++ {
			c.CopyByCPU(p, uint32(i*block), block, DefaultCPUCopyTiming())
		}
		cpuElapsed = p.Now() - start
	})
	eng.Run()

	bytes := float64(n * block)
	blockMBps := bytes / blockElapsed.Seconds() / 1e6
	cpuMBps := bytes / cpuElapsed.Seconds() / 1e6
	if blockMBps < 30 || blockMBps > 45 {
		t.Errorf("block copier bandwidth %.1f MB/s, want ~40", blockMBps)
	}
	if cpuMBps > 5.5 {
		t.Errorf("CPU copy loop bandwidth %.1f MB/s, want < 5.5", cpuMBps)
	}
	if blockMBps < 6*cpuMBps {
		t.Errorf("block copier only %.1fx faster than CPU loop", blockMBps/cpuMBps)
	}
}
