// Package copier models the block copier embedded in each VMP cache
// controller. The copier performs cache-page transfers over the bus
// using the sequential block-transfer protocol (40 MB/s on the
// prototype's VMEbus) and runs concurrently with the CPU, which executes
// the miss-handler bookkeeping out of local memory during the transfer.
//
// For comparison (the paper notes a processor copy loop manages less
// than 5 MB/s), CopyByCPU performs the same movement with single-word
// plain transfers plus per-word instruction overhead.
package copier

import (
	"fmt"

	"vmp/internal/bus"
	"vmp/internal/obs"
	"vmp/internal/sim"
	"vmp/internal/stats"
)

// maxReissues bounds the transfer-error re-issue loop. Exhausting it
// means the transfer hardware is persistently broken — fatal by design,
// there is no software recovery for a page that cannot be moved.
const maxReissues = 12

// reissueShiftCap caps the exponential backoff between re-issues.
const reissueShiftCap = 6

// Copier is one board's block-copy engine. Create with New.
type Copier struct {
	eng     *sim.Engine
	bus     bus.Interconnect
	boardID int

	busy   bool
	done   sim.Signal
	result bus.Result

	ctr  copierCounters
	sink *obs.Sink
}

// Stats counts copier activity.
type Stats struct {
	Transfers      uint64
	Aborted        uint64
	Reissues       uint64 // re-issued transfers after transfer errors
	TransferErrors uint64 // injected transfer errors observed
	BytesMoved     uint64
	BusTime        sim.Time
}

// copierCounters is the recorder-backed counter set for one copier,
// registered in the per-run metrics sink like every other component.
type copierCounters struct {
	transfers, aborted, reissues, xferErrs, bytesMoved, busTime *stats.Counter
}

// New creates a copier for the given board, registering its counters in
// the engine's per-run recorder under "board<i>/copier/...".
func New(eng *sim.Engine, b bus.Interconnect, boardID int) *Copier {
	prefix := fmt.Sprintf("board%d/copier/", boardID)
	rec := eng.Recorder()
	return &Copier{
		eng: eng, bus: b, boardID: boardID,
		ctr: copierCounters{
			transfers:  rec.Counter(prefix + "transfers"),
			aborted:    rec.Counter(prefix + "aborted"),
			reissues:   rec.Counter(prefix + "reissues"),
			xferErrs:   rec.Counter(prefix + "transfer-errors"),
			bytesMoved: rec.Counter(prefix + "bytes-moved"),
			busTime:    rec.Counter(prefix + "bus-time-ns"),
		},
	}
}

// Stats returns a copy of the counters, reconstructed from the per-run
// metrics sink.
func (c *Copier) Stats() Stats {
	return Stats{
		Transfers:      uint64(c.ctr.transfers.Value()),
		Aborted:        uint64(c.ctr.aborted.Value()),
		Reissues:       uint64(c.ctr.reissues.Value()),
		TransferErrors: uint64(c.ctr.xferErrs.Value()),
		BytesMoved:     uint64(c.ctr.bytesMoved.Value()),
		BusTime:        sim.Time(c.ctr.busTime.Value()),
	}
}

// SetSink attaches the observability sink; every transfer then emits a
// KindCopy event spanning its start to completion, re-issues included.
func (c *Copier) SetSink(s *obs.Sink) { c.sink = s }

// Busy reports whether a transfer is in flight.
func (c *Copier) Busy() bool { return c.busy }

// Start launches a block transaction asynchronously. The CPU may keep
// executing (bookkeeping in local memory) and must call Wait before
// depending on the result. Starting while busy is a programming error
// in the miss handler and panics.
func (c *Copier) Start(tx bus.Transaction) {
	if c.busy {
		panic("copier: Start while busy")
	}
	tx.Requester = c.boardID
	c.busy = true
	c.eng.Spawn("copier", func(p *sim.Process) {
		start := p.Now()
		reissued := false
		res := c.bus.Do(p, tx)
		c.ctr.transfers.Inc()
		// A transfer error has no protocol side effects, so the copier
		// re-issues the identical transaction after a bounded,
		// deterministic exponential backoff. An abort is different: it has
		// a protocol cause the miss handler must resolve, so it is
		// reported up instead of retried here.
		for attempt := 0; res.TransferErr; attempt++ {
			c.ctr.xferErrs.Inc()
			reissued = true
			if attempt == maxReissues {
				panic(fmt.Sprintf("copier: board %d transfer %v paddr %#x failed %d times",
					c.boardID, tx.Op, tx.PAddr, maxReissues))
			}
			shift := attempt
			if shift > reissueShiftCap {
				shift = reissueShiftCap
			}
			p.Delay(c.bus.Timing().ArbAddr << shift)
			c.ctr.reissues.Inc()
			res = c.bus.Do(p, tx)
			c.ctr.transfers.Inc()
		}
		c.ctr.busTime.Add(int64(p.Now() - start))
		if res.Aborted {
			c.ctr.aborted.Inc()
		} else {
			c.ctr.bytesMoved.Add(int64(tx.Bytes))
		}
		if c.sink != nil {
			var fl uint8
			if res.Aborted {
				fl |= obs.FlagAborted
			}
			if reissued {
				fl |= obs.FlagTransferErr
			}
			c.sink.Emit(obs.Event{
				Time: start, Dur: p.Now() - start, PAddr: tx.PAddr,
				Board: int16(c.boardID), Kind: obs.KindCopy, Arg: uint8(tx.Op), Flags: fl,
			})
		}
		c.result = res
		c.busy = false
		c.done.Broadcast()
	})
}

// Wait blocks p until the in-flight transfer (if any) completes and
// returns its result.
func (c *Copier) Wait(p *sim.Process) bus.Result {
	for c.busy {
		c.done.Wait(p)
	}
	return c.result
}

// Run performs a block transaction synchronously: Start followed by
// Wait.
func (c *Copier) Run(p *sim.Process, tx bus.Transaction) bus.Result {
	c.Start(tx)
	return c.Wait(p)
}

// CPUCopyTiming parameterizes the software copy loop used by the
// block-copier ablation: per-word loop overhead executed by the CPU in
// addition to the word-at-a-time bus transfers.
type CPUCopyTiming struct {
	PerWordOverhead sim.Time
}

// DefaultCPUCopyTiming models a tight 68020 copy loop: roughly two
// instructions (load, store with post-increment and branch folded in)
// per longword at ~420 ns each beyond the bus transfer itself.
func DefaultCPUCopyTiming() CPUCopyTiming {
	return CPUCopyTiming{PerWordOverhead: 400 * sim.Nanosecond}
}

// CopyByCPU moves n bytes using single-word plain bus transactions in a
// software loop, charging loop overhead per word: the slow path the
// block copier exists to avoid. It returns the bus time consumed.
func (c *Copier) CopyByCPU(p *sim.Process, paddr uint32, n int, t CPUCopyTiming) sim.Time {
	var busTime sim.Time
	for off := 0; off < n; off += 4 {
		p.Delay(t.PerWordOverhead)
		start := p.Now()
		c.bus.Do(p, bus.Transaction{
			Op: bus.PlainRead, PAddr: paddr + uint32(off), Bytes: 4, Requester: c.boardID,
		})
		busTime += p.Now() - start
	}
	return busTime
}
