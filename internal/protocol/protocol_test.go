package protocol

import (
	"reflect"
	"testing"

	"vmp/internal/busop"
)

var consistencyOps = []busop.Op{
	busop.ReadShared, busop.ReadPrivate, busop.AssertOwnership,
	busop.WriteBack, busop.Notify, busop.ReadExclusive,
}

// refVMP2 is the Section 3.2 decision table written out longhand, the
// same reference internal/monitor's model test uses.
func refVMP2(act Action, op busop.Op, own bool) (abort, interrupt bool) {
	switch act {
	case Shared:
		switch op {
		case busop.ReadPrivate, busop.AssertOwnership:
			return false, !own
		case busop.WriteBack:
			return true, !own
		}
	case Private:
		if own && op == busop.WriteBack {
			return false, false
		}
		return true, !own
	case Notify:
		if op == busop.Notify {
			return false, !own
		}
	}
	return false, false
}

func TestRegistry(t *testing.T) {
	want := []string{"rlt", "vmp2", "vmp3"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := Get(""); err != nil || p.Name() != DefaultName {
		t.Errorf("Get(\"\") = %v, %v; want default %q", p, err, DefaultName)
	}
	if _, err := Get("mesi"); err == nil {
		t.Error("Get of unknown protocol did not error")
	}
}

func TestVMP2ReactionTable(t *testing.T) {
	// Exhaustive: every (action, op, own) triple against the reference.
	for _, act := range []Action{Ignore, Shared, Private, Notify} {
		for _, op := range consistencyOps {
			if op == busop.ReadExclusive {
				continue // vmp2 never sees it
			}
			for _, own := range []bool{false, true} {
				r := VMP2{}.React(act, op, own)
				wantAbort, wantIntr := refVMP2(act, op, own)
				if r.Abort != wantAbort || r.Interrupt != wantIntr {
					t.Errorf("vmp2 React(%v, %v, own=%v) = %+v, want abort=%v intr=%v",
						act, op, own, r, wantAbort, wantIntr)
				}
				if r.Seen {
					t.Errorf("vmp2 React(%v, %v, own=%v) asserted the shared line", act, op, own)
				}
			}
		}
	}
}

func TestVMP3ReactionTable(t *testing.T) {
	// The ReadExclusive rows differ from vmp2; everything else matches.
	for _, own := range []bool{false, true} {
		// Shared entries assert the shared line — the requester's own
		// entry included, so an aliased fill comes back shared.
		r := VMP3{}.React(Shared, busop.ReadExclusive, own)
		if !r.Seen || r.Abort || r.Interrupt {
			t.Errorf("vmp3 React(Shared, RX, own=%v) = %+v, want Seen only", own, r)
		}
		// Private entries compete exactly like vmp2's Private row.
		r = VMP3{}.React(Private, busop.ReadExclusive, own)
		if !r.Abort || r.Interrupt != !own || r.Seen {
			t.Errorf("vmp3 React(Private, RX, own=%v) = %+v", own, r)
		}
		// Ignore/Notify entries stay silent.
		for _, act := range []Action{Ignore, Notify} {
			if r := (VMP3{}).React(act, busop.ReadExclusive, own); r != (Reaction{}) {
				t.Errorf("vmp3 React(%v, RX, own=%v) = %+v, want zero", act, own, r)
			}
		}
	}
	// Non-RX rows delegate to vmp2 verbatim.
	for _, act := range []Action{Ignore, Shared, Private, Notify} {
		for _, op := range consistencyOps {
			if op == busop.ReadExclusive {
				continue
			}
			for _, own := range []bool{false, true} {
				if got, want := (VMP3{}.React(act, op, own)), (VMP2{}.React(act, op, own)); got != want {
					t.Errorf("vmp3 React(%v, %v, own=%v) = %+v, want vmp2's %+v", act, op, own, got, want)
				}
			}
		}
	}
}

func TestRLTReactionTable(t *testing.T) {
	// Identical to vmp2 for foreign transactions; own transactions are
	// never aborted (synonyms resolve via the RLT, not self-competition).
	for _, act := range []Action{Ignore, Shared, Private, Notify} {
		for _, op := range consistencyOps {
			if op == busop.ReadExclusive {
				continue
			}
			foreign := RLT{}.React(act, op, false)
			if want := (VMP2{}.React(act, op, false)); foreign != want {
				t.Errorf("rlt React(%v, %v, foreign) = %+v, want %+v", act, op, foreign, want)
			}
			own := RLT{}.React(act, op, true)
			if own.Abort {
				t.Errorf("rlt React(%v, %v, own) aborted", act, op)
			}
			if want := (VMP2{}.React(act, op, true)); own.Interrupt != want.Interrupt {
				t.Errorf("rlt React(%v, %v, own) interrupt=%v, want %v", act, op, own.Interrupt, want.Interrupt)
			}
		}
	}
}

func TestTableUpdate(t *testing.T) {
	cases := []struct {
		p          Protocol
		op         busop.Op
		downgrade  bool
		sharedSeen bool
		want       Action
		ok         bool
	}{
		{VMP2{}, busop.ReadShared, false, false, Shared, true},
		{VMP2{}, busop.ReadPrivate, false, false, Private, true},
		{VMP2{}, busop.AssertOwnership, false, false, Private, true},
		{VMP2{}, busop.WriteBack, false, false, Ignore, true},
		{VMP2{}, busop.WriteBack, true, false, Shared, true},
		{VMP2{}, busop.PlainRead, false, false, Ignore, false},
		{VMP2{}, busop.Notify, false, false, Ignore, false},
		{VMP3{}, busop.ReadExclusive, false, false, Private, true},
		{VMP3{}, busop.ReadExclusive, false, true, Shared, true},
		{VMP3{}, busop.ReadShared, false, false, Shared, true},
		{RLT{}, busop.ReadPrivate, false, false, Private, true},
		{RLT{}, busop.WriteBack, true, false, Shared, true},
	}
	for _, c := range cases {
		a, ok := c.p.TableUpdate(c.op, c.downgrade, c.sharedSeen, 0)
		if ok != c.ok || (ok && a != c.want) {
			t.Errorf("%s TableUpdate(%v, dg=%v, seen=%v) = (%v, %v), want (%v, %v)",
				c.p.Name(), c.op, c.downgrade, c.sharedSeen, a, ok, c.want, c.ok)
		}
	}
	for _, p := range []Protocol{VMP2{}, VMP3{}, RLT{}} {
		wat, ok := p.TableUpdate(busop.WriteActionTable, false, false, uint8(Notify))
		if !ok || wat != Notify {
			t.Errorf("%s WriteActionTable update = (%v, %v)", p.Name(), wat, ok)
		}
	}
}

func TestFillPlan(t *testing.T) {
	cases := []struct {
		p           Protocol
		wantPrivate bool
		op          busop.Op
		sharedSeen  bool
		state       PageState
	}{
		{VMP2{}, false, busop.ReadShared, false, StateShared},
		{VMP2{}, false, busop.ReadShared, true, StateShared},
		{VMP2{}, true, busop.ReadPrivate, false, StatePrivate},
		{VMP3{}, false, busop.ReadExclusive, false, StatePrivate}, // exclusive-clean grant
		{VMP3{}, false, busop.ReadExclusive, true, StateShared},   // shared line downgrades
		{VMP3{}, true, busop.ReadPrivate, false, StatePrivate},
		{RLT{}, false, busop.ReadShared, false, StateShared},
		{RLT{}, true, busop.ReadPrivate, false, StatePrivate},
	}
	for _, c := range cases {
		if op := c.p.FillOp(c.wantPrivate); op != c.op {
			t.Errorf("%s FillOp(%v) = %v, want %v", c.p.Name(), c.wantPrivate, op, c.op)
		}
		if st := c.p.FillState(c.op, c.sharedSeen); st != c.state {
			t.Errorf("%s FillState(%v, seen=%v) = %v, want %v", c.p.Name(), c.op, c.sharedSeen, st, c.state)
		}
	}
	for _, p := range []Protocol{VMP2{}, VMP3{}, RLT{}} {
		if p.UpgradeOp() != busop.AssertOwnership {
			t.Errorf("%s UpgradeOp = %v", p.Name(), p.UpgradeOp())
		}
	}
}

func TestWordClass(t *testing.T) {
	for _, p := range []Protocol{VMP2{}, VMP3{}, RLT{}} {
		cases := map[busop.Op]WordClass{
			busop.Notify:          WordNotify,
			busop.ReadShared:      WordDowngrade,
			busop.ReadPrivate:     WordRelease,
			busop.AssertOwnership: WordRelease,
			busop.WriteBack:       WordWriteBack,
			busop.PlainRead:       WordNone,
		}
		if p.Name() == "vmp3" {
			// An aborted foreign ReadExclusive is still a read: the holder
			// downgrades to shared (MESI E/M→S), never fully releases —
			// otherwise concurrent readers ping-pong exclusive copies.
			cases[busop.ReadExclusive] = WordDowngrade
		}
		for op, want := range cases {
			if got := p.WordClass(op); got != want {
				t.Errorf("%s WordClass(%v) = %v, want %v", p.Name(), op, got, want)
			}
		}
	}
}

func TestProtocolTraits(t *testing.T) {
	cases := []struct {
		p           Protocol
		selfAborts  bool
		localSyn    bool
		oracle      OracleSpec
		latticeSize int
	}{
		{VMP2{}, true, false, OracleSpec{}, 2},
		{VMP3{}, true, false, OracleSpec{StalePrivateOK: true}, 2},
		{RLT{}, false, true, OracleSpec{AllowSelfOwnedRead: true, StalePrivateOK: true}, 2},
	}
	for _, c := range cases {
		if c.p.SelfAborts() != c.selfAborts {
			t.Errorf("%s SelfAborts = %v", c.p.Name(), c.p.SelfAborts())
		}
		if c.p.LocalSynonyms() != c.localSyn {
			t.Errorf("%s LocalSynonyms = %v", c.p.Name(), c.p.LocalSynonyms())
		}
		if c.p.Oracle() != c.oracle {
			t.Errorf("%s Oracle = %+v, want %+v", c.p.Name(), c.p.Oracle(), c.oracle)
		}
		if len(c.p.Lattice()) != c.latticeSize {
			t.Errorf("%s Lattice = %v", c.p.Name(), c.p.Lattice())
		}
	}
}

func TestStrings(t *testing.T) {
	if Shared.String() != "shared" || Private.String() != "private" ||
		Ignore.String() != "ignore" || Notify.String() != "notify" {
		t.Error("Action.String")
	}
	if StateShared.String() != "shared" || StatePrivate.String() != "private" {
		t.Error("PageState.String")
	}
	if Action(7).String() == "" || PageState(7).String() == "" {
		t.Error("out-of-range String empty")
	}
}
