package protocol

import "vmp/internal/busop"

// VMP2 is the paper's 2-state (shared/private) distributed-ownership
// protocol, exactly as Section 3.2 specifies it: a read miss issues
// ReadShared, a write miss ReadPrivate, a write hit on a shared page
// AssertOwnership, and the monitor aborts any consistency transaction
// that touches a page its processor owns — including the processor's
// own transactions under a different virtual address, which is how
// aliases are caught ("the processor competes against itself").
type VMP2 struct{}

// Name implements Protocol.
func (VMP2) Name() string { return "vmp2" }

// Lattice implements Protocol.
func (VMP2) Lattice() []PageState { return []PageState{StateShared, StatePrivate} }

// React implements Protocol: the Section 3.2 reaction table.
func (VMP2) React(act Action, op busop.Op, own bool) Reaction {
	switch act {
	case Shared:
		switch op {
		case busop.ReadPrivate, busop.AssertOwnership:
			// Another processor takes ownership: we must discard our
			// shared copy. Our own read-private over a shared alias is
			// resolved by the miss handler from local state.
			return Reaction{Interrupt: !own}
		case busop.WriteBack:
			// A write-back of a page we hold shared is a protocol
			// violation (someone wrote back a page they did not own).
			return Reaction{Abort: true, Interrupt: !own}
		}
	case Private:
		if own && op == busop.WriteBack {
			// The owner releasing the page: never aborted.
			return Reaction{}
		}
		// Any consistency-related transaction on a page we own must be
		// aborted so we can release the page first. This includes our
		// own transactions under a different virtual address (alias).
		return Reaction{Abort: true, Interrupt: !own}
	case Notify:
		if op == busop.Notify {
			return Reaction{Interrupt: !own}
		}
	}
	return Reaction{}
}

// TableUpdate implements Protocol: the overlapped update of Section
// 3.2 — a successful fill records the granted state, a write-back
// clears (or downgrades) the entry, and WriteActionTable writes the
// entry verbatim.
func (VMP2) TableUpdate(op busop.Op, downgrade, sharedSeen bool, action uint8) (Action, bool) {
	switch op {
	case busop.ReadShared:
		return Shared, true
	case busop.ReadPrivate, busop.AssertOwnership:
		return Private, true
	case busop.WriteBack:
		if downgrade {
			return Shared, true
		}
		return Ignore, true
	case busop.WriteActionTable:
		return Action(action & 3), true
	}
	return Ignore, false
}

// FillOp implements Protocol.
func (VMP2) FillOp(wantPrivate bool) busop.Op {
	if wantPrivate {
		return busop.ReadPrivate
	}
	return busop.ReadShared
}

// FillState implements Protocol: the granted state is exactly what was
// asked for (the shared line plays no part in vmp2).
func (VMP2) FillState(op busop.Op, sharedSeen bool) PageState {
	if op == busop.ReadPrivate || op == busop.AssertOwnership {
		return StatePrivate
	}
	return StateShared
}

// UpgradeOp implements Protocol.
func (VMP2) UpgradeOp() busop.Op { return busop.AssertOwnership }

// WordClass implements Protocol.
func (VMP2) WordClass(op busop.Op) WordClass {
	switch op {
	case busop.Notify:
		return WordNotify
	case busop.ReadShared:
		// Someone wants to read a page we hold private: downgrade.
		return WordDowngrade
	case busop.ReadPrivate, busop.AssertOwnership:
		return WordRelease
	case busop.WriteBack:
		return WordWriteBack
	}
	return WordNone
}

// SelfAborts implements Protocol: aliases are resolved by competing
// against oneself on the bus.
func (VMP2) SelfAborts() bool { return true }

// LocalSynonyms implements Protocol.
func (VMP2) LocalSynonyms() bool { return false }

// Oracle implements Protocol: the strict contract.
func (VMP2) Oracle() OracleSpec { return OracleSpec{} }
