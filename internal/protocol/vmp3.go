package protocol

import "vmp/internal/busop"

// VMP3 is a MESI-style exclusive-clean refinement of the paper's
// protocol. A read miss issues ReadExclusive instead of ReadShared:
// every monitor whose table records the page Shared asserts the bus's
// shared line, and the fill installs
//
//   - a shared copy when the line was asserted (someone else holds the
//     page), or
//   - a private-but-clean copy when it was not (the page is nobody
//     else's): the cache slot carries Exclusive without Modified.
//
// A subsequent local write then upgrades silently in the cache — the
// AssertOwnership transaction (and its abort/interrupt round) that
// vmp2 pays on every private read-then-write disappears from the bus.
// The table still records the page Private, so foreign requests abort
// and get serviced exactly as in vmp2; the refinement is invisible to
// other boards except as absent traffic.
//
// Like vmp2's clean shared pages, an exclusive-clean page is evicted
// silently (nothing to write back), which leaves a stale Private table
// entry; the miss handler already clears stale entries on its
// self-abort path, and the shadow oracle accepts them via
// OracleSpec.StalePrivateOK.
type VMP3 struct{}

// Name implements Protocol.
func (VMP3) Name() string { return "vmp3" }

// Lattice implements Protocol: shared and private, with private
// refined by the cache's clean/dirty flag into exclusive-clean vs
// owned-dirty.
func (VMP3) Lattice() []PageState { return []PageState{StateShared, StatePrivate} }

// React implements Protocol: vmp2's table plus the ReadExclusive rows.
func (VMP3) React(act Action, op busop.Op, own bool) Reaction {
	if act == Shared && op == busop.ReadExclusive {
		// Assert the shared line so the requester's grant is downgraded
		// to a shared copy. The requester's own stale or aliased Shared
		// entry counts too: its fill must then come back shared, which
		// keeps a multi-slot (aliased) frame consistently shared.
		return Reaction{Seen: true}
	}
	// Private + ReadExclusive falls through to vmp2's Private row: an
	// exclusive read of a page somebody owns competes like any other
	// consistency transaction (abort, release, retry).
	return VMP2{}.React(act, op, own)
}

// TableUpdate implements Protocol: ReadExclusive records the granted
// state — Shared when the line was asserted, Private otherwise.
func (VMP3) TableUpdate(op busop.Op, downgrade, sharedSeen bool, action uint8) (Action, bool) {
	if op == busop.ReadExclusive {
		if sharedSeen {
			return Shared, true
		}
		return Private, true
	}
	return VMP2{}.TableUpdate(op, downgrade, sharedSeen, action)
}

// FillOp implements Protocol: read misses probe for exclusivity.
func (VMP3) FillOp(wantPrivate bool) busop.Op {
	if wantPrivate {
		return busop.ReadPrivate
	}
	return busop.ReadExclusive
}

// FillState implements Protocol.
func (VMP3) FillState(op busop.Op, sharedSeen bool) PageState {
	if op == busop.ReadExclusive {
		if sharedSeen {
			return StateShared
		}
		return StatePrivate
	}
	return VMP2{}.FillState(op, sharedSeen)
}

// UpgradeOp implements Protocol: upgrades from a genuinely shared page
// still pay the AssertOwnership transaction.
func (VMP3) UpgradeOp() busop.Op { return busop.AssertOwnership }

// WordClass implements Protocol: a foreign ReadExclusive that aborted
// against our ownership is still just a READ — downgrade to a shared
// copy (write back if dirty) rather than releasing the page. The
// retrying requester then sees our Shared entry assert the line and
// fills shared, exactly like MESI's E/M→S on a read snoop. Releasing
// instead would hand the requester an exclusive-clean copy, and under
// read contention the page ping-pongs between exclusive holders with
// the shared line never asserted — concurrent readers (a TTAS spin
// loop, say) degenerate into the private-steal storm the shared state
// exists to avoid, starving any writer trying to get a word in.
func (VMP3) WordClass(op busop.Op) WordClass {
	if op == busop.ReadExclusive {
		return WordDowngrade
	}
	return VMP2{}.WordClass(op)
}

// SelfAborts implements Protocol.
func (VMP3) SelfAborts() bool { return true }

// LocalSynonyms implements Protocol.
func (VMP3) LocalSynonyms() bool { return false }

// Oracle implements Protocol: silent exclusive-clean evictions leave
// stale Private entries the oracle must tolerate.
func (VMP3) Oracle() OracleSpec { return OracleSpec{StalePrivateOK: true} }
