package protocol

import "vmp/internal/busop"

// RLT is the reverse-lookup-table synonym strategy for virtually
// tagged caches (Desai & Deshmukh, "Synonym handling for virtually
// tagged caches", arXiv:2108.00444), grafted onto the paper's 2-state
// protocol. The bus-visible protocol is vmp2's; what changes is how a
// board handles a miss on a physical frame it already caches under a
// different virtual name (a synonym):
//
//   - vmp2 lets the miss compete against the board's own monitor on
//     the bus (self-abort, release, retry) — correct but costly.
//   - rlt consults the board's frame → cached-slots reverse map (the
//     RLT the hardware would keep beside the physically-indexed
//     action table) and attaches the new virtual name to the resident
//     frame locally: no bus transaction, no self-abort, no release of
//     a privately held page just to re-acquire it.
//
// Consequently the monitor never aborts its own processor's
// transactions (SelfAborts is false) — by the time a transaction
// reaches the bus the RLT has already proven the frame absent — and
// the shadow oracle must accept a ReadShared that completes while the
// requester itself is still on record as owner (a stale ownership
// record from a silently resolved synonym; OracleSpec's
// AllowSelfOwnedRead).
type RLT struct{}

// Name implements Protocol.
func (RLT) Name() string { return "rlt" }

// Lattice implements Protocol.
func (RLT) Lattice() []PageState { return []PageState{StateShared, StatePrivate} }

// React implements Protocol: vmp2's table for foreign transactions;
// own transactions are never aborted (the RLT already resolved any
// self-conflict locally, so an own-frame hit here is a stale entry,
// not a live synonym).
func (RLT) React(act Action, op busop.Op, own bool) Reaction {
	r := VMP2{}.React(act, op, own)
	if own {
		r.Abort = false
	}
	return r
}

// TableUpdate implements Protocol.
func (RLT) TableUpdate(op busop.Op, downgrade, sharedSeen bool, action uint8) (Action, bool) {
	return VMP2{}.TableUpdate(op, downgrade, sharedSeen, action)
}

// FillOp implements Protocol.
func (RLT) FillOp(wantPrivate bool) busop.Op { return VMP2{}.FillOp(wantPrivate) }

// FillState implements Protocol.
func (RLT) FillState(op busop.Op, sharedSeen bool) PageState {
	return VMP2{}.FillState(op, sharedSeen)
}

// UpgradeOp implements Protocol.
func (RLT) UpgradeOp() busop.Op { return busop.AssertOwnership }

// WordClass implements Protocol.
func (RLT) WordClass(op busop.Op) WordClass { return VMP2{}.WordClass(op) }

// SelfAborts implements Protocol: synonyms are resolved from the RLT,
// never by competing against oneself.
func (RLT) SelfAborts() bool { return false }

// LocalSynonyms implements Protocol.
func (RLT) LocalSynonyms() bool { return true }

// Oracle implements Protocol.
func (RLT) Oracle() OracleSpec {
	return OracleSpec{AllowSelfOwnedRead: true, StalePrivateOK: true}
}
