// Package protocol defines the pluggable cache-coherence protocol
// layer: the page-state lattice, the monitor reaction table (what each
// bus operation does to each local action-table state), the miss
// handler's transition plan (which bus op a fill issues and which page
// state the fill installs), and the per-protocol invariants the shadow
// oracle in internal/check is allowed to assume.
//
// Three protocols are registered:
//
//   - vmp2: the paper's 2-state (shared/private) distributed-ownership
//     protocol, extracted verbatim from the previously hardwired logic.
//   - vmp3: a MESI-style exclusive-clean refinement. A read miss issues
//     ReadExclusive; if no other monitor holds the page Shared, the
//     fill installs the page private-but-clean, so a subsequent local
//     write needs no AssertOwnership bus transaction.
//   - rlt: reverse-lookup-table synonym handling for virtually-tagged
//     caches (Desai & Deshmukh, arXiv:2108.00444). The board's
//     frame-to-slots reverse map doubles as the RLT: a miss whose
//     frame is already cached under another virtual name is resolved
//     locally instead of competing against itself on the bus.
//
// The protocol layer is deliberately pure: implementations are
// stateless value types, all decisions are functions of their
// arguments, and nothing here touches the simulator clock, so a
// protocol can be shared by every board of a machine (and by the
// differential oracle running several machines side by side).
package protocol

import (
	"fmt"
	"sort"

	"vmp/internal/busop"
)

// Action is a two-bit monitor action-table entry, the per-frame local
// state every protocol works in terms of. The codes are the paper's
// Section 3.2 encoding and are shared by all protocols (vmp3's
// exclusive-clean state is a cache-flag refinement of Private, not a
// new table code — the table stays two bits wide as in the hardware).
type Action uint8

// Action-table codes from Section 3.2.
const (
	Ignore  Action = 0 // 00 - do nothing
	Shared  Action = 1 // 01 - interrupt on ownership requests
	Private Action = 2 // 10 - abort + interrupt on any consistency transaction
	Notify  Action = 3 // 11 - interrupt on notification
)

// String names the action code.
func (a Action) String() string {
	switch a {
	case Ignore:
		return "ignore"
	case Shared:
		return "shared"
	case Private:
		return "private"
	case Notify:
		return "notify"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// PageState is the software page-state a fill installs in the board's
// local tables. The lattice is shared/private for every registered
// protocol; vmp3 refines private with the cache's Exclusive+!Modified
// (private-clean) flag combination.
type PageState uint8

const (
	// StateShared: readable copy, other caches may hold it too.
	StateShared PageState = iota
	// StatePrivate: this board owns the page exclusively.
	StatePrivate
)

// String names the page state.
func (s PageState) String() string {
	switch s {
	case StateShared:
		return "shared"
	case StatePrivate:
		return "private"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// Reaction is a monitor's decision about one observed transaction
// within the consistency-check window.
type Reaction struct {
	// Abort asserts the abort line: the transaction must not complete.
	Abort bool
	// Interrupt posts a FIFO word to this monitor's processor.
	Interrupt bool
	// Seen asserts the shared line: this monitor's table records the
	// page, so an exclusive-clean grant must be downgraded to shared.
	// Only vmp3's ReadExclusive consults it.
	Seen bool
}

// WordClass tells the interrupt-service routine what kind of response
// a FIFO word demands, so the service path is protocol-agnostic.
type WordClass uint8

const (
	// WordNone: no consistency response (the word is informational).
	WordNone WordClass = iota
	// WordNotify: deliver the notification to the waiting processor.
	WordNotify
	// WordDowngrade: another processor wants the page shared — if held
	// private, release ownership but keep a shared copy.
	WordDowngrade
	// WordRelease: another processor wants the page exclusively —
	// release ownership (write back if dirty) and invalidate all
	// copies.
	WordRelease
	// WordWriteBack: a write-back of a page this board holds shared —
	// the copy is stale; invalidate it.
	WordWriteBack
)

// OracleSpec declares the per-protocol relaxations the shadow oracle
// (internal/check) must honour. The zero value is the strict vmp2
// contract.
type OracleSpec struct {
	// AllowSelfOwnedRead permits a ReadShared to complete while the
	// shadow record still names the requester as owner (rlt resolves
	// own aliases locally instead of self-aborting, so a stale own
	// ownership record is legal; the oracle converts it to a sharer
	// role).
	AllowSelfOwnedRead bool
	// StalePrivateOK permits a quiescent Private table entry for a
	// frame the board no longer holds, provided the shadow record
	// still names that board as owner (vmp3's exclusive-clean pages
	// are evicted silently, exactly like vmp2's clean shared pages).
	StalePrivateOK bool
}

// Protocol is one coherence protocol: the reaction table, the
// transition plan, and the oracle contract. Implementations are
// stateless and safe for concurrent use by every board of a machine.
type Protocol interface {
	// Name is the registry key ("vmp2", "vmp3", "rlt").
	Name() string

	// Lattice lists the page states the protocol's fills install.
	Lattice() []PageState

	// React is the monitor reaction table: the decision for one
	// observed transaction given the local action-table entry act and
	// whether the transaction is the monitor's own (own). Pure.
	React(act Action, op busop.Op, own bool) Reaction

	// TableUpdate is the overlapped action-table update a monitor
	// applies as a side effect of its own successful transaction:
	// the new entry for the transaction's frame, or ok=false to leave
	// the table untouched. downgrade is the transaction's Downgrade
	// flag, sharedSeen the bus's shared-line result, action the raw
	// WriteActionTable payload.
	TableUpdate(op busop.Op, downgrade, sharedSeen bool, action uint8) (a Action, ok bool)

	// FillOp is the bus operation a miss fill issues: wantPrivate is
	// true for write misses (and the read-private policy hint).
	FillOp(wantPrivate bool) busop.Op

	// FillState is the page state a successful fill installs, given
	// the op it issued and the bus's shared-line result.
	FillState(op busop.Op, sharedSeen bool) PageState

	// UpgradeOp is the bus operation a write hit on a shared page
	// issues to take ownership in place.
	UpgradeOp() busop.Op

	// WordClass classifies a FIFO interrupt word for the service
	// routine.
	WordClass(op busop.Op) WordClass

	// SelfAborts reports whether the monitor aborts its own
	// processor's transactions (the paper's "competing against
	// itself" alias handling). When false the board must resolve
	// synonyms locally (LocalSynonyms).
	SelfAborts() bool

	// LocalSynonyms reports whether the board resolves virtual-address
	// synonyms from its reverse lookup table (frame → cached slots)
	// without bus traffic.
	LocalSynonyms() bool

	// Oracle is the shadow-oracle contract for this protocol.
	Oracle() OracleSpec
}

// DefaultName is the protocol assumed when a config names none: the
// paper's 2-state protocol.
const DefaultName = "vmp2"

// registry holds the built-in protocols. It is populated at init time
// and read-only afterwards, so concurrent Get calls are safe.
var registry = map[string]Protocol{
	"vmp2": VMP2{},
	"vmp3": VMP3{},
	"rlt":  RLT{},
}

// Get returns the named protocol ("" selects DefaultName).
func Get(name string) (Protocol, error) {
	if name == "" {
		name = DefaultName
	}
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
