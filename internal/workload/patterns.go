package workload

import (
	"vmp/internal/sim"
	"vmp/internal/trace"
)

// Simple deterministic reference patterns used by protocol and baseline
// experiments. These complement the program-structured generators: they
// isolate one access behaviour so an experiment can attribute costs.

// Sequential returns n refs walking a region word by word: the best case
// for large cache pages and block transfer.
func Sequential(asid uint8, base uint32, n int, kind trace.Kind) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Kind: kind, ASID: asid, VAddr: base + uint32(i)*4}
	}
	return refs
}

// Stride returns n refs separated by stride bytes: with stride >= the
// page size, every reference misses (the worst case for large pages).
func Stride(asid uint8, base uint32, n, stride int, kind trace.Kind) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Kind: kind, ASID: asid, VAddr: base + uint32(i*stride)}
	}
	return refs
}

// Random returns n uniform refs over a region of size bytes, word
// aligned, with the given write fraction.
func Random(asid uint8, base uint32, size, n int, writeFrac float64, seed uint64) []trace.Ref {
	r := sim.NewRand(seed)
	refs := make([]trace.Ref, n)
	words := size / 4
	for i := range refs {
		kind := trace.Read
		if r.Bool(writeFrac) {
			kind = trace.Write
		}
		refs[i] = trace.Ref{Kind: kind, ASID: asid, VAddr: base + uint32(r.Intn(words))*4}
	}
	return refs
}

// PingPong returns, for each of nProcs processors, a ref stream that
// repeatedly writes then reads the same shared word — the worst-case
// data-contention pattern for an ownership protocol (every write forces
// a transfer of ownership). rounds is the number of write+read pairs per
// processor.
func PingPong(nProcs int, addr uint32, rounds int) [][]trace.Ref {
	streams := make([][]trace.Ref, nProcs)
	for p := range streams {
		refs := make([]trace.Ref, 0, 2*rounds)
		for i := 0; i < rounds; i++ {
			refs = append(refs,
				trace.Ref{Kind: trace.Write, ASID: 1, VAddr: addr},
				trace.Ref{Kind: trace.Read, ASID: 1, VAddr: addr},
			)
		}
		streams[p] = refs
	}
	return streams
}

// FalseSharing returns per-processor streams where each processor writes
// its own word, but all words share one cache page of the given size —
// contention caused purely by the large page granularity.
func FalseSharing(nProcs int, base uint32, pageSize, rounds int) [][]trace.Ref {
	streams := make([][]trace.Ref, nProcs)
	for p := range streams {
		addr := base + uint32(p*4)
		_ = pageSize // all words fall in [base, base+pageSize)
		refs := make([]trace.Ref, 0, 2*rounds)
		for i := 0; i < rounds; i++ {
			refs = append(refs,
				trace.Ref{Kind: trace.Write, ASID: 1, VAddr: addr},
				trace.Ref{Kind: trace.Read, ASID: 1, VAddr: addr},
			)
		}
		streams[p] = refs
	}
	return streams
}

// ReadSharing returns per-processor streams that all read the same
// region: an ownership protocol should serve these with shared copies
// and no contention after warmup.
func ReadSharing(nProcs int, base uint32, size, rounds int) [][]trace.Ref {
	streams := make([][]trace.Ref, nProcs)
	words := size / 4
	for p := range streams {
		refs := make([]trace.Ref, 0, rounds)
		for i := 0; i < rounds; i++ {
			refs = append(refs, trace.Ref{
				Kind: trace.Read, ASID: 1, VAddr: base + uint32(i%words)*4,
			})
		}
		streams[p] = refs
	}
	return streams
}

// MigratoryStreams models data that migrates between processors: each
// processor in turn reads then updates a shared record before the next
// processor takes over. Returned streams interleave so that processor p
// touches the record in rounds where round%nProcs == p; the simulator's
// timing decides actual interleaving.
func MigratoryStreams(nProcs int, base uint32, recordWords, rounds int) [][]trace.Ref {
	streams := make([][]trace.Ref, nProcs)
	for p := 0; p < nProcs; p++ {
		var refs []trace.Ref
		for round := p; round < rounds; round += nProcs {
			for w := 0; w < recordWords; w++ {
				refs = append(refs, trace.Ref{Kind: trace.Read, ASID: 1, VAddr: base + uint32(w)*4})
			}
			for w := 0; w < recordWords; w++ {
				refs = append(refs, trace.Ref{Kind: trace.Write, ASID: 1, VAddr: base + uint32(w)*4})
			}
		}
		streams[p] = refs
	}
	return streams
}
