package workload

import (
	"vmp/internal/sim"
	"vmp/internal/trace"
)

// Standard virtual-address layout used by generated programs. User code,
// stack and heap live in the user region; kernel code and data live in
// the high "kernel virtual address space" region, which the VMP memory
// map makes part of every user address space.
const (
	UserCodeBase   = 0x0001_0000
	UserHeapBase   = 0x2000_0000
	UserStackTop   = 0x7ff0_0000
	KernelCodeBase = 0xc000_0000
	KernelDataBase = 0xc800_0000
	KernelStackTop = 0xcff0_0000
)

// ProgramConfig parameterizes a synthetic single-process reference
// stream. The defaults produced by the profile constructors resemble
// the mix in the paper's ATUM traces.
type ProgramConfig struct {
	Seed uint64
	ASID uint8

	// Code structure.
	NumFuncs     int     // number of distinct functions
	FuncSize     uint32  // bytes of code per function
	FuncZipfS    float64 // call-target skew (higher = hotter hot set)
	BlockLen     int     // mean basic-block length, instructions
	LoopProb     float64 // probability a block ends in a backward loop branch
	MeanLoopTrip int     // mean loop trip count
	CallProb     float64 // probability a block ends in a call

	// Data structure.
	DataRefProb float64 // probability an instruction carries a data ref
	WriteFrac   float64 // fraction of data refs that are writes
	StackFrac   float64 // fraction of data refs to the stack
	HotFrac     float64 // fraction of heap refs to the hot working set
	HotPages    int     // hot working-set size, 512-byte units
	HeapPages   int     // total heap size, 512-byte units (cold misses)
	HeapZipfS   float64 // skew across hot pages

	// Sequential sweeps (block copies, string ops, I/O buffers).
	SweepProb float64 // probability per instruction of starting a sweep
	SweepLen  int     // mean sweep length in bytes

	// Operating-system behaviour.
	SyscallEvery int     // mean instructions between kernel entries
	KernelBurst  int     // mean instructions per kernel entry
	KernelFuncs  int     // kernel code footprint, functions
	KernelPages  int     // kernel data footprint, 512-byte units
	KernelZipfS  float64 // kernel data skew (lower = poorer locality)
}

// Program is a trace.Source producing the synthetic reference stream.
type Program struct {
	cfg  ProgramConfig
	rnd  *sim.Rand
	fz   *Zipf // user call targets
	hz   *Zipf // hot heap pages
	kfz  *Zipf // kernel call targets
	kdz  *Zipf // kernel data pages
	mode mode

	pc        uint32 // current instruction address
	blockLeft int    // instructions left in current basic block
	stack     []frame
	sp        uint32 // simulated user stack pointer

	loopStart uint32
	loopLeft  int
	loopBody  int

	sweepAddr uint32
	sweepLeft int

	kernelLeft int    // instructions left in current kernel burst
	savedPC    uint32 // user pc saved across a kernel entry
	savedSP    uint32 // user sp saved across a kernel entry

	pendingData []trace.Ref // data refs queued behind the current ifetch
}

type frame struct {
	retPC uint32
	sp    uint32
}

type mode int

const (
	userMode mode = iota
	kernelMode
)

// NewProgram returns a generator for the given configuration.
func NewProgram(cfg ProgramConfig) *Program {
	if cfg.NumFuncs <= 0 || cfg.BlockLen <= 0 {
		panic("workload: ProgramConfig missing code structure")
	}
	p := &Program{
		cfg: cfg,
		rnd: sim.NewRand(cfg.Seed),
		fz:  NewZipf(cfg.NumFuncs, cfg.FuncZipfS),
		sp:  UserStackTop,
	}
	if cfg.HotPages > 0 {
		p.hz = NewZipf(cfg.HotPages, cfg.HeapZipfS)
	}
	if cfg.KernelFuncs > 0 {
		p.kfz = NewZipf(cfg.KernelFuncs, 1.1)
	}
	if cfg.KernelPages > 0 {
		p.kdz = NewZipf(cfg.KernelPages, cfg.KernelZipfS)
	}
	p.pc = p.funcBase(p.fz.Sample(p.rnd))
	p.blockLeft = p.nextBlockLen()
	return p
}

// Next implements trace.Source. The stream is unbounded; wrap with
// trace.Limit for a finite trace.
func (p *Program) Next() (trace.Ref, bool) {
	if len(p.pendingData) > 0 {
		r := p.pendingData[0]
		p.pendingData = p.pendingData[1:]
		return r, true
	}
	return p.instruction(), true
}

// instruction emits one instruction fetch and queues any data references
// that instruction performs.
func (p *Program) instruction() trace.Ref {
	super := p.mode == kernelMode
	ref := trace.Ref{Kind: trace.IFetch, Super: super, ASID: p.cfg.ASID, VAddr: p.pc}
	p.pc += 4
	p.queueData(super)
	p.advanceControl()
	return ref
}

func (p *Program) queueData(super bool) {
	if p.sweepLeft > 0 {
		// A sweep touches memory every instruction, sequentially.
		kind := trace.Read
		if p.rnd.Bool(0.5) {
			kind = trace.Write
		}
		p.pendingData = append(p.pendingData, trace.Ref{
			Kind: kind, Super: super, ASID: p.cfg.ASID, VAddr: p.sweepAddr,
		})
		p.sweepAddr += 4
		p.sweepLeft -= 4
		return
	}
	if !p.rnd.Bool(p.cfg.DataRefProb) {
		return
	}
	kind := trace.Read
	if p.rnd.Bool(p.cfg.WriteFrac) {
		kind = trace.Write
	}
	var addr uint32
	if super {
		addr = p.kernelDataAddr()
	} else {
		addr = p.userDataAddr()
	}
	p.pendingData = append(p.pendingData, trace.Ref{
		Kind: kind, Super: super, ASID: p.cfg.ASID, VAddr: addr,
	})
}

func (p *Program) userDataAddr() uint32 {
	u := p.rnd.Float64()
	switch {
	case u < p.cfg.StackFrac:
		// Near the top of the stack: tight locality.
		off := uint32(p.rnd.Intn(64)) * 4
		return p.sp - off
	case u < p.cfg.StackFrac+(1-p.cfg.StackFrac)*p.cfg.HotFrac && p.hz != nil:
		page := uint32(p.hz.Sample(p.rnd))
		return UserHeapBase + page*512 + uint32(p.rnd.Intn(128))*4
	default:
		if p.cfg.HeapPages <= 0 {
			return UserHeapBase
		}
		page := uint32(p.rnd.Intn(p.cfg.HeapPages))
		return UserHeapBase + page*512 + uint32(p.rnd.Intn(128))*4
	}
}

func (p *Program) kernelDataAddr() uint32 {
	if p.kdz == nil {
		return KernelDataBase
	}
	page := uint32(p.kdz.Sample(p.rnd))
	return KernelDataBase + page*512 + uint32(p.rnd.Intn(128))*4
}

func (p *Program) funcBase(i int) uint32 {
	return UserCodeBase + uint32(i)*p.cfg.FuncSize
}

func (p *Program) kernelFuncBase(i int) uint32 {
	return KernelCodeBase + uint32(i)*p.cfg.FuncSize
}

func (p *Program) nextBlockLen() int {
	return p.rnd.Geometric(1 / float64(p.cfg.BlockLen))
}

// advanceControl decides where the next instruction comes from: fall
// through within the block, loop back, call, return, branch within the
// function, or enter/leave the kernel.
func (p *Program) advanceControl() {
	// Kernel entry/exit bookkeeping.
	switch p.mode {
	case userMode:
		if p.cfg.SyscallEvery > 0 && p.rnd.Bool(1/float64(p.cfg.SyscallEvery)) {
			p.enterKernel()
			return
		}
	case kernelMode:
		p.kernelLeft--
		if p.kernelLeft <= 0 {
			p.leaveKernel()
			return
		}
	}

	// Sweeps start independently of block structure.
	if p.mode == userMode && p.sweepLeft <= 0 && p.cfg.SweepProb > 0 && p.rnd.Bool(p.cfg.SweepProb) {
		p.sweepLeft = int(float64(p.cfg.SweepLen) * (0.5 + p.rnd.Float64()))
		if p.cfg.HeapPages > 0 {
			p.sweepAddr = UserHeapBase + uint32(p.rnd.Intn(p.cfg.HeapPages))*512
		} else {
			p.sweepAddr = UserHeapBase
		}
	}

	p.blockLeft--
	if p.blockLeft > 0 {
		return
	}
	p.blockLeft = p.nextBlockLen()

	// Active loop: branch back until the trip count is exhausted.
	if p.loopLeft > 0 {
		p.loopLeft--
		if p.loopLeft > 0 {
			p.pc = p.loopStart
			p.blockLeft = p.loopBody
			return
		}
	}

	u := p.rnd.Float64()
	switch {
	case u < p.cfg.LoopProb:
		body := p.blockLeft
		p.loopBody = body
		p.loopStart = p.pc - uint32(4*body) // loop over the last block
		if p.loopStart < p.currentCodeBase() {
			p.loopStart = p.currentCodeBase()
		}
		p.loopLeft = p.rnd.Geometric(1 / float64(p.cfg.MeanLoopTrip))
		p.pc = p.loopStart
	case u < p.cfg.LoopProb+p.cfg.CallProb:
		p.call()
	case u < p.cfg.LoopProb+p.cfg.CallProb+0.15 && p.canReturn():
		p.ret()
	default:
		// Forward branch within the current function.
		p.pc = p.randomWithinFunc()
	}
}

func (p *Program) currentCodeBase() uint32 {
	if p.mode == kernelMode {
		return KernelCodeBase
	}
	return UserCodeBase
}

func (p *Program) randomWithinFunc() uint32 {
	base := p.pc - p.pc%p.cfg.FuncSize
	return base + uint32(p.rnd.Intn(int(p.cfg.FuncSize)/4))*4
}

func (p *Program) call() {
	p.stack = append(p.stack, frame{retPC: p.pc, sp: p.sp})
	p.sp -= uint32(16 + p.rnd.Intn(16)*4) // push a frame
	// Write the return address and saved registers.
	p.pendingData = append(p.pendingData, trace.Ref{
		Kind: trace.Write, Super: p.mode == kernelMode, ASID: p.cfg.ASID, VAddr: p.sp,
	})
	if p.mode == kernelMode && p.kfz != nil {
		p.pc = p.kernelFuncBase(p.kfz.Sample(p.rnd))
	} else {
		p.pc = p.funcBase(p.fz.Sample(p.rnd))
	}
	p.loopLeft = 0
}

// canReturn reports whether a return is legal here: there is a frame,
// and kernel code never returns into a user-mode frame (kernel exit is
// modeled by leaveKernel instead).
func (p *Program) canReturn() bool {
	if len(p.stack) == 0 {
		return false
	}
	if p.mode == kernelMode {
		return p.stack[len(p.stack)-1].retPC >= KernelCodeBase
	}
	return true
}

func (p *Program) ret() {
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	p.pendingData = append(p.pendingData, trace.Ref{
		Kind: trace.Read, Super: p.mode == kernelMode, ASID: p.cfg.ASID, VAddr: p.sp,
	})
	p.pc, p.sp = f.retPC, f.sp
	p.loopLeft = 0
}

func (p *Program) enterKernel() {
	p.mode = kernelMode
	p.savedPC = p.pc
	p.savedSP = p.sp
	p.sp = KernelStackTop // the kernel runs on its own stack
	p.kernelLeft = p.rnd.Geometric(1 / float64(p.cfg.KernelBurst))
	if p.kfz != nil {
		p.pc = p.kernelFuncBase(p.kfz.Sample(p.rnd))
	} else {
		p.pc = KernelCodeBase
	}
	p.loopLeft = 0
	p.blockLeft = p.nextBlockLen()
}

func (p *Program) leaveKernel() {
	p.mode = userMode
	p.pc = p.savedPC
	// Unwind any frames pushed while in the kernel and restore the
	// user stack pointer.
	for len(p.stack) > 0 && p.stack[len(p.stack)-1].retPC >= KernelCodeBase {
		p.stack = p.stack[:len(p.stack)-1]
	}
	p.sp = p.savedSP
	p.loopLeft = 0
	p.blockLeft = p.nextBlockLen()
}
