package workload

import (
	"math"
	"testing"

	"vmp/internal/sim"
	"vmp/internal/trace"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := sim.NewRand(1)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(50, 1.2)
	r := sim.NewRand(2)
	counts := make([]int, 50)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[25] {
		t.Errorf("rank 0 (%d) not hotter than rank 25 (%d)", counts[0], counts[25])
	}
	// Rank 0 of a s=1.2 Zipf over 50 items carries >20% of the mass.
	if frac := float64(counts[0]) / n; frac < 0.15 {
		t.Errorf("rank-0 fraction %v too small for s=1.2", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := sim.NewRand(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("item %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestProgramDeterministic(t *testing.T) {
	gen := func() []trace.Ref {
		src, err := New(Edit, 42)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Collect(src, 5000)
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProgramSeedsDiffer(t *testing.T) {
	a, _ := Generate(Edit, 1, 2000)
	b, _ := Generate(Edit, 2, 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

// The supervisor fraction should be in the neighbourhood the paper
// reports for its ATUM traces (~25% of references).
func TestProfilesSupervisorFraction(t *testing.T) {
	for _, p := range Profiles() {
		st, err := Describe(p, 11, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		f := st.SupervisorFraction()
		if f < 0.10 || f > 0.45 {
			t.Errorf("%s: supervisor fraction %.3f outside [0.10, 0.45]", p, f)
		}
	}
}

// Footprints must fit the studied cache range: comfortably above 64KB
// pressure but bounded (a few hundred KB), or Figure 4 cannot show the
// knee.
func TestProfilesFootprint(t *testing.T) {
	for _, p := range Profiles() {
		st, err := Describe(p, 11, DefaultTraceLen)
		if err != nil {
			t.Fatal(err)
		}
		fp := st.Footprint(256)
		if fp < 48<<10 || fp > 640<<10 {
			t.Errorf("%s: footprint %d KB outside [48, 640] KB", p, fp>>10)
		}
	}
}

func TestProfilesMix(t *testing.T) {
	for _, p := range Profiles() {
		st, err := Describe(p, 5, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		ifrac := float64(st.IFetches) / float64(st.Refs)
		if ifrac < 0.5 || ifrac > 0.85 {
			t.Errorf("%s: ifetch fraction %.2f outside [0.5, 0.85]", p, ifrac)
		}
		if st.Writes == 0 || st.Reads == 0 {
			t.Errorf("%s: degenerate mix %+v", p, st)
		}
	}
}

func TestMultiUsesTwoASIDs(t *testing.T) {
	st, err := Describe(Multi, 9, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ASIDs) < 2 {
		t.Errorf("multi profile used %d ASIDs, want >= 2", len(st.ASIDs))
	}
	asids := SortedASIDs(st)
	for i := 1; i < len(asids); i++ {
		if asids[i] <= asids[i-1] {
			t.Error("SortedASIDs not increasing")
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := New(Profile("nope"), 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Generate(Profile("nope"), 1, 10); err == nil {
		t.Error("unknown profile accepted by Generate")
	}
	if _, err := Describe(Profile("nope"), 1, 10); err == nil {
		t.Error("unknown profile accepted by Describe")
	}
}

func TestKernelRefsInKernelRegion(t *testing.T) {
	refs, err := Generate(Edit, 21, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			continue
		}
		inKernel := r.VAddr >= KernelCodeBase
		if r.Super != inKernel {
			t.Fatalf("ifetch super=%v at %#x", r.Super, r.VAddr)
		}
	}
}

func TestUserDataBelowKernel(t *testing.T) {
	refs, err := Generate(Batch, 23, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if !r.Super && r.VAddr >= KernelCodeBase {
			t.Fatalf("user ref in kernel region: %v", r)
		}
	}
}

func TestSequentialPattern(t *testing.T) {
	refs := Sequential(1, 0x1000, 10, trace.Read)
	for i, r := range refs {
		if r.VAddr != 0x1000+uint32(i)*4 || r.Kind != trace.Read {
			t.Fatalf("ref %d = %v", i, r)
		}
	}
}

func TestStridePattern(t *testing.T) {
	refs := Stride(1, 0, 4, 512, trace.Write)
	want := []uint32{0, 512, 1024, 1536}
	for i, r := range refs {
		if r.VAddr != want[i] {
			t.Fatalf("ref %d addr %#x, want %#x", i, r.VAddr, want[i])
		}
	}
}

func TestRandomPattern(t *testing.T) {
	refs := Random(1, 0x4000, 1024, 500, 0.5, 77)
	writes := 0
	for _, r := range refs {
		if r.VAddr < 0x4000 || r.VAddr >= 0x4000+1024 {
			t.Fatalf("addr %#x out of region", r.VAddr)
		}
		if r.VAddr%4 != 0 {
			t.Fatalf("unaligned addr %#x", r.VAddr)
		}
		if r.Kind == trace.Write {
			writes++
		}
	}
	if writes < 150 || writes > 350 {
		t.Errorf("writes = %d of 500, want ~250", writes)
	}
}

func TestPingPong(t *testing.T) {
	streams := PingPong(3, 0x8000, 5)
	if len(streams) != 3 {
		t.Fatal("wrong stream count")
	}
	for _, s := range streams {
		if len(s) != 10 {
			t.Fatalf("stream length %d, want 10", len(s))
		}
		for i, r := range s {
			if r.VAddr != 0x8000 {
				t.Fatal("ping-pong must hit one address")
			}
			wantKind := trace.Write
			if i%2 == 1 {
				wantKind = trace.Read
			}
			if r.Kind != wantKind {
				t.Fatalf("ref %d kind %v", i, r.Kind)
			}
		}
	}
}

func TestFalseSharingDistinctWordsSamePage(t *testing.T) {
	streams := FalseSharing(4, 0x10000, 256, 3)
	seen := map[uint32]bool{}
	for _, s := range streams {
		addr := s[0].VAddr
		if seen[addr] {
			t.Error("two processors share a word")
		}
		seen[addr] = true
		if addr/256 != 0x10000/256 {
			t.Error("words not on the same 256B page")
		}
	}
}

func TestMigratoryStreams(t *testing.T) {
	streams := MigratoryStreams(2, 0, 4, 6)
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	// 6 rounds × (4 reads + 4 writes) = 48 refs total.
	if total != 48 {
		t.Errorf("total refs %d, want 48", total)
	}
}

func TestReadSharing(t *testing.T) {
	streams := ReadSharing(2, 0x100, 64, 32)
	for _, s := range streams {
		for _, r := range s {
			if r.Kind != trace.Read {
				t.Fatal("non-read in read-sharing stream")
			}
			if r.VAddr < 0x100 || r.VAddr >= 0x100+64 {
				t.Fatalf("addr %#x out of region", r.VAddr)
			}
		}
	}
}
