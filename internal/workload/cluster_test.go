package workload

import (
	"testing"

	"vmp/internal/trace"
)

func TestClusterTraceLength(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		cfg := DefaultClusterConfig(256, clustered)
		refs := ClusterTrace(cfg, 10_000)
		if len(refs) != 10_000 {
			t.Errorf("clustered=%v: %d refs", clustered, len(refs))
		}
	}
}

func TestClusterTraceDeterministic(t *testing.T) {
	cfg := DefaultClusterConfig(256, true)
	a := ClusterTrace(cfg, 5000)
	b := ClusterTrace(cfg, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestClusteredLayoutPacksGroups(t *testing.T) {
	// In the clustered layout, one group's references over a short
	// window touch very few distinct 256-byte pages; scattered touches
	// ObjsPerGrp pages.
	count := func(clustered bool) int {
		cfg := DefaultClusterConfig(256, clustered)
		cfg.Groups = 4 // tiny, so one group's objects are easy to isolate
		cfg.GroupZipfS = 0
		refs := ClusterTrace(cfg, 12) // exactly one group visit (6 objs × 2 fields)
		pages := map[uint32]bool{}
		for _, r := range refs {
			pages[r.Page(256)] = true
		}
		return len(pages)
	}
	cl, sc := count(true), count(false)
	if cl >= sc {
		t.Errorf("clustered group touched %d pages, scattered %d", cl, sc)
	}
	if cl > 2 {
		t.Errorf("clustered group spans %d pages, want <= 2", cl)
	}
}

func TestClusterWriteFraction(t *testing.T) {
	cfg := DefaultClusterConfig(256, true)
	refs := ClusterTrace(cfg, 50_000)
	writes := 0
	for _, r := range refs {
		if r.Kind == trace.Write {
			writes++
		}
		if r.Kind == trace.IFetch {
			t.Fatal("cluster trace contains instruction fetches")
		}
	}
	frac := float64(writes) / float64(len(refs))
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("write fraction %.2f, want ~0.3", frac)
	}
}

func TestClusterAddressesAligned(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		cfg := DefaultClusterConfig(512, clustered)
		refs := ClusterTrace(cfg, 5000)
		for _, r := range refs {
			if r.VAddr%4 != 0 {
				t.Fatalf("unaligned address %#x", r.VAddr)
			}
			if r.VAddr < UserHeapBase {
				t.Fatalf("address %#x below heap", r.VAddr)
			}
		}
	}
}
