// Package workload generates synthetic memory-reference traces and
// shared-memory access patterns.
//
// The paper evaluates cache miss ratios with four ATUM traces of VAX
// 8200 / VMS executions (358k-540k four-byte references, ~25% operating
// system references accounting for ~50% of the misses, light
// multiprogramming). Those traces are not available, so this package
// synthesizes traces with the same structural properties: sequential
// instruction fetch with loops and calls, stack and heap data references
// with working-set locality, occasional sequential sweeps, and
// supervisor-mode bursts with deliberately poorer locality. Profiles in
// profiles.go are calibrated so the resulting cold-start miss ratios
// fall in the regime the paper reports (fractions of a percent for
// 128-256 KB caches).
package workload

import (
	"math"

	"vmp/internal/sim"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s, using a precomputed cumulative table and binary search.
// It is deterministic given the Rand passed to Sample.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent s >= 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf over empty domain")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one value in [0, N()).
func (z *Zipf) Sample(r *sim.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
