package workload

import (
	"vmp/internal/sim"
	"vmp/internal/trace"
)

// ClusterConfig parameterizes the Section 5.4 data-clustering study:
// "programming systems need to recognize the importance of clustering
// related data on cache pages". A program touches small objects in
// correlated groups (think: a record and its list links); the allocator
// either scatters the objects of a group across pages or clusters each
// group on one cache page.
type ClusterConfig struct {
	Seed       uint64
	ASID       uint8
	Groups     int     // number of object groups
	ObjsPerGrp int     // objects touched together
	ObjSize    int     // bytes per object
	PageSize   int     // cache page size the allocator targets
	GroupZipfS float64 // group popularity skew
	Clustered  bool    // cluster each group on contiguous pages?
	FieldsPer  int     // word touches per object per visit
	WriteFrac  float64
}

// DefaultClusterConfig returns the study's standard parameters: 256
// groups of 6 × 32-byte objects.
func DefaultClusterConfig(pageSize int, clustered bool) ClusterConfig {
	return ClusterConfig{
		Seed:       17,
		ASID:       1,
		Groups:     2048,
		ObjsPerGrp: 6,
		ObjSize:    32,
		PageSize:   pageSize,
		GroupZipfS: 0.9,
		Clustered:  clustered,
		FieldsPer:  2,
		WriteFrac:  0.3,
	}
}

// ClusterTrace generates n references of the group-access workload with
// the configured object layout.
func ClusterTrace(cfg ClusterConfig, n int) []trace.Ref {
	rnd := sim.NewRand(cfg.Seed)
	gz := NewZipf(cfg.Groups, cfg.GroupZipfS)

	// Lay the objects out.
	addrs := make([][]uint32, cfg.Groups) // addrs[g][o] = object base
	base := uint32(UserHeapBase)
	if cfg.Clustered {
		// Groups packed back to back, each starting on a page boundary:
		// one group's objects share (at most a couple of) pages.
		for g := range addrs {
			groupBytes := uint32(cfg.ObjsPerGrp * cfg.ObjSize)
			start := base
			for o := 0; o < cfg.ObjsPerGrp; o++ {
				addrs[g] = append(addrs[g], start+uint32(o*cfg.ObjSize))
			}
			// Advance to the next page boundary past the group.
			base = (start + groupBytes + uint32(cfg.PageSize) - 1) &^ (uint32(cfg.PageSize) - 1)
		}
	} else {
		// Scattered: a column-major layout — object o of every group
		// sits in one per-type arena, so the objects of a single group
		// land on ObjsPerGrp different, far-apart pages. Within each
		// arena the group order is independently permuted, as a real
		// allocator's churn would: related (and equally hot) groups do
		// not sit next to each other either.
		arena := uint32(cfg.Groups*cfg.ObjSize+cfg.PageSize) &^ (uint32(cfg.PageSize) - 1)
		for o := 0; o < cfg.ObjsPerGrp; o++ {
			perm := rnd.Perm(cfg.Groups)
			for g := range addrs {
				addrs[g] = append(addrs[g], base+uint32(o)*arena+uint32(perm[g]*cfg.ObjSize))
			}
		}
	}

	refs := make([]trace.Ref, 0, n)
	for len(refs) < n {
		g := gz.Sample(rnd)
		for _, obj := range addrs[g] {
			for f := 0; f < cfg.FieldsPer && len(refs) < n; f++ {
				kind := trace.Read
				if rnd.Bool(cfg.WriteFrac) {
					kind = trace.Write
				}
				refs = append(refs, trace.Ref{
					Kind: kind, ASID: cfg.ASID,
					VAddr: obj + uint32(rnd.Intn(cfg.ObjSize/4))*4,
				})
			}
			if len(refs) >= n {
				break
			}
		}
	}
	return refs
}
