package workload

import (
	"fmt"
	"sort"

	"vmp/internal/trace"
)

// Profile names the four ATUM-like synthetic traces used to reproduce
// Figure 4. Each is a different mix of code footprint, data working set,
// kernel activity and multiprogramming, standing in for the four VAX
// 8200 / VMS traces the paper used.
type Profile string

// The four standard trace profiles.
const (
	// Edit: interactive editing session — small hot code, small data
	// working set, frequent short syscalls.
	Edit Profile = "edit"
	// Compile: compiler run — larger code footprint, sequential sweeps
	// over source buffers, moderate kernel activity.
	Compile Profile = "compile"
	// Batch: numeric batch job — loop-heavy code, larger data working
	// set, few syscalls.
	Batch Profile = "batch"
	// Multi: two user processes timesliced with kernel scheduling
	// between them — exercises ASID tagging and multiprogramming.
	Multi Profile = "multi"
)

// Profiles lists all standard profiles in a stable order.
func Profiles() []Profile { return []Profile{Edit, Compile, Batch, Multi} }

// DefaultTraceLen matches the middle of the paper's trace lengths
// (358,000-540,000 references).
const DefaultTraceLen = 450_000

// New returns an unbounded source for the named profile. Wrap with
// trace.Limit (or use Generate) for a finite trace.
func New(p Profile, seed uint64) (trace.Source, error) {
	switch p {
	case Edit:
		return NewProgram(editConfig(seed)), nil
	case Compile:
		return NewProgram(compileConfig(seed)), nil
	case Batch:
		return NewProgram(batchConfig(seed)), nil
	case Multi:
		a := NewProgram(multiUserConfig(seed, 1))
		b := NewProgram(multiUserConfig(seed+7777, 2))
		// Timeslices of ~30k references model coarse multiprogramming.
		return trace.Interleave([]trace.Source{a, b}, []int{30_000, 30_000}), nil
	default:
		return nil, fmt.Errorf("workload: unknown profile %q", p)
	}
}

// Generate materializes n references of the named profile (n <= 0 uses
// DefaultTraceLen).
func Generate(p Profile, seed uint64, n int) ([]trace.Ref, error) {
	src, err := New(p, seed)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = DefaultTraceLen
	}
	return trace.Collect(src, n), nil
}

func baseConfig(seed uint64) ProgramConfig {
	return ProgramConfig{
		Seed:         seed,
		ASID:         1,
		NumFuncs:     20,
		FuncSize:     2048,
		FuncZipfS:    1.2,
		BlockLen:     8,
		LoopProb:     0.35,
		MeanLoopTrip: 12,
		CallProb:     0.10,
		DataRefProb:  0.45,
		WriteFrac:    0.30,
		StackFrac:    0.40,
		HotFrac:      0.965,
		HotPages:     40, // 20 KB hot data
		HeapPages:    96,
		HeapZipfS:    0.9,
		SweepProb:    0.00015,
		SweepLen:     2048,
		SyscallEvery: 400,
		KernelBurst:  130,
		KernelFuncs:  24,
		KernelPages:  64,
		KernelZipfS:  0.8,
	}
}

func editConfig(seed uint64) ProgramConfig {
	cfg := baseConfig(seed)
	cfg.NumFuncs = 16
	cfg.HotPages = 24
	cfg.HeapPages = 64
	cfg.SyscallEvery = 250
	cfg.KernelBurst = 110
	return cfg
}

func compileConfig(seed uint64) ProgramConfig {
	cfg := baseConfig(seed)
	cfg.NumFuncs = 36
	cfg.FuncZipfS = 1.1
	cfg.HotPages = 48
	cfg.HeapPages = 128
	cfg.SweepProb = 0.0004
	cfg.SweepLen = 3072
	cfg.SyscallEvery = 500
	cfg.KernelBurst = 160
	return cfg
}

func batchConfig(seed uint64) ProgramConfig {
	cfg := baseConfig(seed)
	cfg.NumFuncs = 20
	cfg.LoopProb = 0.45
	cfg.MeanLoopTrip = 24
	cfg.HotPages = 64
	cfg.HeapPages = 160
	cfg.HotFrac = 0.88
	cfg.SyscallEvery = 900
	cfg.KernelBurst = 190
	return cfg
}

func multiUserConfig(seed uint64, asid uint8) ProgramConfig {
	cfg := baseConfig(seed)
	cfg.ASID = asid
	cfg.NumFuncs = 16
	cfg.HotPages = 24
	cfg.HeapPages = 72
	cfg.SyscallEvery = 350
	return cfg
}

// Describe runs the generator for n refs and returns its trace.Stats,
// useful for verifying a profile matches the ATUM characteristics.
func Describe(p Profile, seed uint64, n int) (*trace.Stats, error) {
	src, err := New(p, seed)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = DefaultTraceLen
	}
	return trace.Summarize(src, n), nil
}

// SortedASIDs returns the ASIDs present in st in increasing order
// (helper for deterministic reporting).
func SortedASIDs(st *trace.Stats) []uint8 {
	out := make([]uint8, 0, len(st.ASIDs))
	for a := range st.ASIDs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
