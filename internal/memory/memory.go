// Package memory models VMP's shared main memory: a sequence of cache
// page frames backed by static-column RAM optimized for block transfer
// (300 ns for the first longword of a sequential access, 100 ns for each
// subsequent one).
//
// The memory carries real byte data. Because the consistency protocol
// guarantees that a privately held page has exactly one copy and that
// write-back is the only bus transaction that modifies main memory, the
// simulator can keep a single backing store and let processors read and
// write it directly while the protocol (checked elsewhere) keeps those
// accesses race-free in simulated time.
package memory

import (
	"encoding/binary"
	"fmt"

	"vmp/internal/sim"
)

// Timing holds the memory-board timing constants from the paper.
type Timing struct {
	FirstWord sim.Time // first longword of a sequential access
	NextWord  sim.Time // each subsequent longword
}

// DefaultTiming matches the prototype's static-column RAM boards.
func DefaultTiming() Timing {
	return Timing{FirstWord: 300 * sim.Nanosecond, NextWord: 100 * sim.Nanosecond}
}

// BlockTime returns the time to stream n bytes sequentially.
func (t Timing) BlockTime(n int) sim.Time {
	words := n / 4
	if words <= 0 {
		return 0
	}
	return t.FirstWord + sim.Time(words-1)*t.NextWord
}

// Memory is the shared main memory.
type Memory struct {
	data      []byte
	pageSize  int
	timing    Timing
	freeList  []uint32 // free frame numbers, LIFO
	allocated []bool
}

// New creates a memory of size bytes divided into frames of pageSize
// bytes. Both must be powers of two with pageSize dividing size.
func New(size, pageSize int) *Memory {
	if size <= 0 || pageSize <= 0 || size%pageSize != 0 {
		panic(fmt.Sprintf("memory: bad geometry size=%d pageSize=%d", size, pageSize))
	}
	m := &Memory{
		data:      make([]byte, size),
		pageSize:  pageSize,
		timing:    DefaultTiming(),
		allocated: make([]bool, size/pageSize),
	}
	// Populate the free list high-to-low so Alloc hands out frame 0,
	// 1, 2... in order (deterministic and easy to read in tests).
	for f := m.Frames() - 1; f >= 0; f-- {
		m.freeList = append(m.freeList, uint32(f))
	}
	return m
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// PageSize returns the frame size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// Frames returns the number of cache page frames.
func (m *Memory) Frames() int { return len(m.data) / m.pageSize }

// Timing returns the board timing constants.
func (m *Memory) Timing() Timing { return m.timing }

// Frame returns the frame number containing physical address paddr.
func (m *Memory) Frame(paddr uint32) uint32 { return paddr / uint32(m.pageSize) }

// FrameAddr returns the first physical address of a frame.
func (m *Memory) FrameAddr(frame uint32) uint32 { return frame * uint32(m.pageSize) }

// ReadWord returns the 32-bit word at paddr (must be in range; 4-byte
// aligned addresses are the norm, but any in-range address works).
func (m *Memory) ReadWord(paddr uint32) uint32 {
	return binary.LittleEndian.Uint32(m.data[paddr : paddr+4])
}

// WriteWord stores a 32-bit word at paddr.
func (m *Memory) WriteWord(paddr uint32, v uint32) {
	binary.LittleEndian.PutUint32(m.data[paddr:paddr+4], v)
}

// ReadBlock copies out n bytes starting at paddr.
func (m *Memory) ReadBlock(paddr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, m.data[paddr:int(paddr)+n])
	return out
}

// WriteBlock stores b starting at paddr.
func (m *Memory) WriteBlock(paddr uint32, b []byte) {
	copy(m.data[paddr:int(paddr)+len(b)], b)
}

// AllocFrame takes a free frame, zeroing its contents. The second result
// is false when memory is exhausted (the page-out daemon's cue).
func (m *Memory) AllocFrame() (uint32, bool) {
	for len(m.freeList) > 0 {
		f := m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
		if !m.allocated[f] {
			m.allocated[f] = true
			start := int(f) * m.pageSize
			clear(m.data[start : start+m.pageSize])
			return f, true
		}
	}
	return 0, false
}

// FreeFrame returns a frame to the allocator. Double frees panic: they
// are simulator bugs.
func (m *Memory) FreeFrame(f uint32) {
	if int(f) >= len(m.allocated) || !m.allocated[f] {
		panic(fmt.Sprintf("memory: free of unallocated frame %d", f))
	}
	m.allocated[f] = false
	m.freeList = append(m.freeList, f)
}

// FreeFrames reports how many frames remain unallocated.
func (m *Memory) FreeFrames() int {
	n := 0
	for _, a := range m.allocated {
		if !a {
			n++
		}
	}
	return n
}

// Allocated reports whether frame f is currently allocated.
func (m *Memory) Allocated(f uint32) bool {
	return int(f) < len(m.allocated) && m.allocated[f]
}
