package memory

import (
	"testing"
	"testing/quick"

	"vmp/internal/sim"
)

func TestGeometry(t *testing.T) {
	m := New(1<<20, 256)
	if m.Size() != 1<<20 || m.PageSize() != 256 || m.Frames() != 4096 {
		t.Errorf("geometry: size=%d ps=%d frames=%d", m.Size(), m.PageSize(), m.Frames())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ size, ps int }{{0, 256}, {1024, 0}, {1000, 256}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", c.size, c.ps)
				}
			}()
			New(c.size, c.ps)
		}()
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New(64<<10, 256)
	m.WriteWord(0x1234, 0xdeadbeef)
	if got := m.ReadWord(0x1234); got != 0xdeadbeef {
		t.Errorf("ReadWord = %#x", got)
	}
	if got := m.ReadWord(0x1238); got != 0 {
		t.Errorf("adjacent word disturbed: %#x", got)
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	m := New(64<<10, 256)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	m := New(64<<10, 256)
	in := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteBlock(0x2000, in)
	out := m.ReadBlock(0x2000, 8)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("block byte %d = %d", i, out[i])
		}
	}
}

func TestFrameMath(t *testing.T) {
	m := New(64<<10, 256)
	if m.Frame(0x1ff) != 1 || m.Frame(0x200) != 2 {
		t.Error("Frame boundaries wrong")
	}
	if m.FrameAddr(3) != 0x300 {
		t.Errorf("FrameAddr(3) = %#x", m.FrameAddr(3))
	}
}

func TestAllocFree(t *testing.T) {
	m := New(1024, 256) // 4 frames
	var frames []uint32
	for i := 0; i < 4; i++ {
		f, ok := m.AllocFrame()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if m.Allocated(f) != true {
			t.Error("Allocated false after alloc")
		}
		frames = append(frames, f)
	}
	if _, ok := m.AllocFrame(); ok {
		t.Error("alloc succeeded with no free frames")
	}
	if m.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d", m.FreeFrames())
	}
	m.FreeFrame(frames[2])
	if m.FreeFrames() != 1 {
		t.Errorf("FreeFrames after free = %d", m.FreeFrames())
	}
	f, ok := m.AllocFrame()
	if !ok || f != frames[2] {
		t.Errorf("realloc gave %d, want %d", f, frames[2])
	}
}

func TestAllocZeroesFrame(t *testing.T) {
	m := New(1024, 256)
	f, _ := m.AllocFrame()
	m.WriteWord(m.FrameAddr(f), 42)
	m.FreeFrame(f)
	f2, _ := m.AllocFrame()
	if f2 != f {
		t.Fatalf("expected frame reuse, got %d vs %d", f2, f)
	}
	if got := m.ReadWord(m.FrameAddr(f2)); got != 0 {
		t.Errorf("reallocated frame not zeroed: %d", got)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := New(1024, 256)
	f, _ := m.AllocFrame()
	m.FreeFrame(f)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.FreeFrame(f)
}

func TestAllocDeterministicOrder(t *testing.T) {
	m := New(1024, 256)
	for want := uint32(0); want < 4; want++ {
		f, _ := m.AllocFrame()
		if f != want {
			t.Errorf("alloc order: got %d, want %d", f, want)
		}
	}
}

func TestBlockTime(t *testing.T) {
	tm := DefaultTiming()
	cases := []struct {
		bytes int
		want  sim.Time
	}{
		{4, 300},
		{128, 300 + 31*100},
		{256, 300 + 63*100},
		{512, 300 + 127*100},
		{0, 0},
	}
	for _, c := range cases {
		if got := tm.BlockTime(c.bytes); got != c.want {
			t.Errorf("BlockTime(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}
