package serve

import (
	"context"
	"sync"
	"time"

	"vmp/internal/obs"
	"vmp/internal/telemetry"
)

// JobState is a job's lifecycle state. Transitions:
// queued → running → done | failed | canceled; queued → canceled.
type JobState string

// Job states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether a state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobEvent is one line of a job's NDJSON progress stream.
type JobEvent struct {
	Seq  int64     `json:"seq"`
	Wall time.Time `json:"wall"`
	Job  string    `json:"job"`
	// Kind is the event class: "queued", "started", "cell" (one cell
	// finished), "done", "failed", "canceled".
	Kind string `json:"kind"`
	// Cell-level fields, set on "cell" events.
	Cell        string `json:"cell,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached marks a cell answered from the result store.
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

// maxJobEvents bounds a job's retained event history; a grid bigger
// than this still streams every event live, but late subscribers
// replay only the tail.
const maxJobEvents = 8192

// JobView is the serializable snapshot of a job, returned by
// GET /v1/jobs/{id}.
type JobView struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"` // "spec" or "grid"
	Name     string    `json:"name,omitempty"`
	State    JobState  `json:"state"`
	Client   string    `json:"client,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Cells is the total cell count; DoneCells and CacheHits advance as
	// the job runs.
	Cells     int `json:"cells"`
	DoneCells int `json:"done_cells"`
	CacheHits int `json:"cache_hits"`
	// FailedCells counts cells that errored (contained faults
	// included).
	FailedCells int `json:"failed_cells,omitempty"`
	// Fingerprints are the job's cell fingerprints in expansion order;
	// results are fetched per fingerprint from /v1/results/{fp}.
	Fingerprints []string `json:"fingerprints,omitempty"`
	// Err summarizes a failed job.
	Err string `json:"error,omitempty"`
	// Dump is the flight-recorder dump attached to a contained
	// simulator fault, if any cell produced one.
	Dump string `json:"dump,omitempty"`
}

// job is the server-side job record.
type job struct {
	mu     sync.Mutex
	view   JobView
	events []JobEvent
	seq    int64
	// wake broadcasts when events arrive or the state turns terminal.
	wake *sync.Cond
	// cancel aborts the job's run context (set while queued/running).
	cancel context.CancelFunc
	// deadline is the job's wall-clock budget, applied at start.
	budget time.Duration
	// work is the job's payload: expanded cells plus fingerprints.
	work jobWork
	// epoch is the admission instant (monotonic), the t=0 of the job's
	// service spans.
	epoch time.Time
	// spans accumulates the job's service-side lifecycle spans
	// (guarded by mu: the recorder itself is not goroutine-safe).
	spans *telemetry.SpanRecorder
	// captureTrace enables retaining sim events for /trace (?trace=1 on
	// submission); simEvents holds them, bounded by maxJobSimEvents.
	captureTrace bool
	simEvents    []obs.Event
}

// maxJobSimEvents bounds retained sim events per traced job; past it
// the earliest events win (they anchor the timeline).
const maxJobSimEvents = 131072

func newJob(view JobView, budget time.Duration) *job {
	j := &job{view: view, budget: budget, epoch: time.Now()}
	j.wake = sync.NewCond(&j.mu)
	j.spans = telemetry.NewSpanRecorder(j.epoch)
	return j
}

// setCaptureTrace arms sim-event retention for this job (?trace=1).
func (j *job) setCaptureTrace(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.captureTrace = on
}

// recordSpan adds a completed service span under the job lock.
func (j *job) recordSpan(track, name string, start, end time.Time, note string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.spans.Record(track, name, start, end, note)
}

// markSpan adds an instant marker under the job lock.
func (j *job) markSpan(track, name string, at time.Time, note string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.spans.Mark(track, name, at, note)
}

// spanList snapshots the recorded spans.
func (j *job) spanList() []telemetry.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans.Spans()
}

// addSimEvents retains sim events for the combined trace, up to the
// per-job bound.
func (j *job) addSimEvents(evs []obs.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	room := maxJobSimEvents - len(j.simEvents)
	if room <= 0 {
		return
	}
	if len(evs) > room {
		evs = evs[:room]
	}
	j.simEvents = append(j.simEvents, evs...)
}

// simEventList snapshots retained sim events.
func (j *job) simEventList() []obs.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]obs.Event(nil), j.simEvents...)
}

// View snapshots the job.
func (j *job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := j.view
	v.Fingerprints = append([]string(nil), j.view.Fingerprints...)
	return v
}

// emit appends an event to the history and wakes streamers. Kind is
// stamped with the job id and a sequence number.
func (j *job) emit(ev JobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Seq = j.seq
	ev.Job = j.view.ID
	ev.Wall = time.Now().UTC()
	j.events = append(j.events, ev)
	if len(j.events) > maxJobEvents {
		j.events = j.events[len(j.events)-maxJobEvents:]
	}
	j.wake.Broadcast()
}

// eventsSince returns retained events with Seq > after, plus whether
// the job is terminal (no more events will ever come).
func (j *job) eventsSince(after int64) ([]JobEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []JobEvent
	for _, ev := range j.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, j.view.State.Terminal()
}

// waitEvents blocks until an event with Seq > after exists, the job is
// terminal, or stop fires. It returns like eventsSince.
func (j *job) waitEvents(after int64, stop <-chan struct{}) ([]JobEvent, bool) {
	done := make(chan struct{})
	go func() {
		select {
		case <-stop:
			j.mu.Lock()
			j.wake.Broadcast()
			j.mu.Unlock()
		case <-done:
		}
	}()
	defer close(done)

	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.seq > after || j.view.State.Terminal() {
			var out []JobEvent
			for _, ev := range j.events {
				if ev.Seq > after {
					out = append(out, ev)
				}
			}
			return out, j.view.State.Terminal()
		}
		select {
		case <-stop:
			return nil, j.view.State.Terminal()
		default:
		}
		j.wake.Wait()
	}
}

// update mutates the view under the job lock and wakes streamers.
func (j *job) update(fn func(v *JobView)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn(&j.view)
	j.wake.Broadcast()
}

// state returns the current state.
func (j *job) state() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.State
}
