package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vmp/internal/core"
	"vmp/internal/scenario"
)

// testServer boots a daemon on an httptest listener. mutate tweaks the
// config (nil for defaults); the store root is a fresh temp dir.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		StoreDir:  filepath.Join(t.TempDir(), "store"),
		Workers:   2,
		JobBudget: 30 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallSpec is a fast, deterministic single-cell workload.
func smallSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:     name,
		Workload: scenario.WorkloadSpec{Kind: scenario.WorkloadProfile, Refs: 3_000},
	}
}

// livelockServeSpec deterministically trips the simulator's livelock
// hard limit (every abortable transaction aborted, tiny retry budget).
func livelockServeSpec() scenario.Spec {
	return scenario.Spec{
		Name: "livelock-serve",
		Machine: scenario.MachineSpec{
			Processors: 1,
			Retry:      &core.RetryPolicy{BackoffShiftCap: 2, StarveThreshold: 4, HardLimit: 8},
		},
		Workload: scenario.WorkloadSpec{Kind: scenario.WorkloadProfile, Refs: 1_000},
		Faults:   "abort=1",
		Obs:      scenario.ObsSpec{RingSize: 128},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// post issues a POST with an optional client id header.
func post(t *testing.T, url string, body []byte, client string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func stats(t *testing.T, ts *httptest.Server) StatsView {
	t.Helper()
	resp, body := get(t, ts.URL+"/statsz")
	if resp.StatusCode != 200 {
		t.Fatalf("/statsz = %d: %s", resp.StatusCode, body)
	}
	var sv StatsView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatalf("statsz decode: %v\n%s", err, body)
	}
	return sv
}

func TestSpecComputeThenCacheHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, nil)
	body := mustJSON(t, smallSpec("cache-me"))

	resp, data := post(t, ts.URL+"/v1/specs?wait=1", body, "alice")
	if resp.StatusCode != 200 {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, data)
	}
	var first specResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first submission claims a cache hit")
	}
	if !ValidFingerprint(first.Fingerprint) {
		t.Fatalf("fingerprint %q malformed", first.Fingerprint)
	}

	resp, data = post(t, ts.URL+"/v1/specs", body, "alice")
	if resp.StatusCode != 200 {
		t.Fatalf("second submit = %d: %s", resp.StatusCode, data)
	}
	var second specResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeat submission was not answered from the cache")
	}
	// The determinism contract, end to end: the cached answer is
	// byte-identical to the freshly computed one.
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs from computed result:\n%s\nvs\n%s", first.Result, second.Result)
	}

	sv := stats(t, ts)
	if sv.ComputedCells != 1 || sv.CacheHitCells < 1 {
		t.Errorf("stats: computed=%d hits=%d, want 1 computed and >=1 hit", sv.ComputedCells, sv.CacheHitCells)
	}
	if sv.DeterminismMismatches != 0 {
		t.Errorf("determinism_mismatches = %d", sv.DeterminismMismatches)
	}
}

func testGrid(name string) scenario.Grid {
	return scenario.Grid{
		Name: name,
		Base: smallSpec(name),
		Axes: []scenario.Axis{
			{Path: "machine.processors", Values: scenario.Values(1, 2)},
		},
	}
}

// waitJob polls a job to a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != 200 {
			t.Fatalf("job poll = %d: %s", resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobView{}
}

func TestGridSubmitThenRepeatIsAllCacheHits(t *testing.T) {
	_, ts := testServer(t, nil)
	body := mustJSON(t, testGrid("sweep"))

	resp, data := post(t, ts.URL+"/v1/grids", body, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("grid submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Cells != 2 || len(sub.Fingerprints) != 2 {
		t.Fatalf("submit = %+v, want 2 cells", sub)
	}
	v := waitJob(t, ts, sub.Job)
	if v.State != JobDone || v.DoneCells != 2 || v.FailedCells != 0 {
		t.Fatalf("job = %+v, want done with 2 cells", v)
	}

	// Every cell is now individually addressable.
	results := make([][]byte, 2)
	for i, fp := range sub.Fingerprints {
		resp, data := get(t, ts.URL+"/v1/results/"+fp)
		if resp.StatusCode != 200 {
			t.Fatalf("result %s = %d: %s", fp, resp.StatusCode, data)
		}
		results[i] = data
	}

	// The repeat submission never touches the queue: one synchronous
	// 200 assembled from the store.
	resp, data = post(t, ts.URL+"/v1/grids", body, "alice")
	if resp.StatusCode != 200 {
		t.Fatalf("repeat grid submit = %d: %s", resp.StatusCode, data)
	}
	var cachedResp struct {
		Cached bool                 `json:"cached"`
		Sweep  scenario.SweepResult `json:"sweep"`
	}
	if err := json.Unmarshal(data, &cachedResp); err != nil {
		t.Fatal(err)
	}
	if !cachedResp.Cached || len(cachedResp.Sweep.Cells) != 2 {
		t.Fatalf("repeat grid = %s", data)
	}
	for i, cr := range cachedResp.Sweep.Cells {
		stored := mustJSON(t, cr)
		var direct scenario.CellResult
		if err := json.Unmarshal(results[i], &direct); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, mustJSON(t, direct)) {
			t.Errorf("cell %d: cached sweep differs from stored record", i)
		}
	}
	sv := stats(t, ts)
	if sv.ComputedCells != 2 || sv.CacheHitCells < 2 {
		t.Errorf("stats: computed=%d hits=%d", sv.ComputedCells, sv.CacheHitCells)
	}
}

func TestQuotaExhaustionGets429(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.QuotaRate = 0.01 // effectively no refill within the test
		c.QuotaBurst = 2
	})
	var last *http.Response
	var lastBody []byte
	for i := 0; i < 3; i++ {
		last, lastBody = post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec(fmt.Sprintf("q-%d", i))), "greedy")
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d (%s), want 429", last.StatusCode, lastBody)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	// A different client is unaffected.
	resp, body := post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("other-client")), "patient")
	if resp.StatusCode != 200 {
		t.Fatalf("independent client = %d: %s", resp.StatusCode, body)
	}
	if sv := stats(t, ts); sv.QuotaRejected < 1 {
		t.Errorf("quota_rejected = %d, want >= 1", sv.QuotaRejected)
	}
}

// blockingRunCells parks until the job context dies — the stand-in for
// an arbitrarily slow sweep.
func blockingRunCells(name string, cells []scenario.Cell, opts scenario.RunOptions) (*scenario.SweepResult, error) {
	<-opts.Ctx.Done()
	return nil, opts.Ctx.Err()
}

func TestQueueSaturationSheds429(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.QueueDepth = 1 })
	s.runCells = blockingRunCells

	// First job: picked up by the runner, parks.
	resp, body := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("slow-0")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 0 = %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.jobActive.Load() {
		if time.Now().After(deadline) {
			t.Fatal("runner never picked up the first job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Second job fills the queue; third is shed.
	resp, body = post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("slow-1")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("slow-2")), "c")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 2 = %d (%s), want 429 queue-full", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 carries no Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("shed body = %s", body)
	}
	sv := stats(t, ts)
	if sv.Shed < 1 || sv.QueueDepth != 1 {
		t.Errorf("stats: shed=%d queue_depth=%d", sv.Shed, sv.QueueDepth)
	}
}

func TestShedModeStillServesCacheHits(t *testing.T) {
	s, ts := testServer(t, nil)
	body := mustJSON(t, smallSpec("precomputed"))
	resp, data := post(t, ts.URL+"/v1/specs?wait=1", body, "c")
	if resp.StatusCode != 200 {
		t.Fatalf("precompute = %d: %s", resp.StatusCode, data)
	}

	s.SetShedding(true)
	// The cached spec is still answered...
	resp, data = post(t, ts.URL+"/v1/specs", body, "c")
	if resp.StatusCode != 200 {
		t.Fatalf("cache hit under shedding = %d: %s", resp.StatusCode, data)
	}
	var sr specResponse
	json.Unmarshal(data, &sr)
	if !sr.Cached {
		t.Error("shed-mode answer not marked cached")
	}
	// ...while new compute is rejected.
	resp, data = post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("fresh-under-shed")), "c")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("compute under shedding = %d (%s), want 429", resp.StatusCode, data)
	}
	sv := stats(t, ts)
	if !sv.Shedding || sv.Shed < 1 {
		t.Errorf("stats: shedding=%v shed=%d", sv.Shedding, sv.Shed)
	}
}

func TestJobBudgetDeadlineFailsJob(t *testing.T) {
	s, ts := testServer(t, nil)
	s.runCells = blockingRunCells

	resp, data := post(t, ts.URL+"/v1/specs?wait=1&budget_ms=80", mustJSON(t, smallSpec("stuck")), "c")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("stuck job = %d (%s), want 500 with the job record", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobFailed || !strings.Contains(v.Err, "budget") {
		t.Fatalf("job = state %s, err %q; want failed on budget", v.State, v.Err)
	}
}

func TestSimulatorFaultIsContainedAndServiceSurvives(t *testing.T) {
	_, ts := testServer(t, nil)

	resp, data := post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, livelockServeSpec()), "c")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("livelock job = %d (%s), want 500", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobFailed || v.FailedCells != 1 {
		t.Fatalf("job = %+v, want failed with 1 failed cell", v)
	}
	if !strings.Contains(v.Err, "livelock") {
		t.Errorf("job error %q does not name the livelock", v.Err)
	}
	if !strings.Contains(v.Dump, "FLIGHT RECORDER DUMP") {
		t.Errorf("failed job carries no flight-recorder dump (dump = %.120q)", v.Dump)
	}

	// The daemon is still fully serviceable.
	resp, data = post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("after-the-fault")), "c")
	if resp.StatusCode != 200 {
		t.Fatalf("post-fault submit = %d: %s", resp.StatusCode, data)
	}
	sv := stats(t, ts)
	if sv.FaultedCells != 1 {
		t.Errorf("faulted_cells = %d, want 1", sv.FaultedCells)
	}
}

func TestCorruptionIsRepairedOnResubmit(t *testing.T) {
	s, ts := testServer(t, nil)
	body := mustJSON(t, smallSpec("repairable"))

	resp, data := post(t, ts.URL+"/v1/specs?wait=1", body, "c")
	if resp.StatusCode != 200 {
		t.Fatalf("compute = %d: %s", resp.StatusCode, data)
	}
	var first specResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the stored record.
	path := s.store.objectPath(first.Fingerprint)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resubmitting detects the corruption, quarantines, recomputes,
	// repairs — and the repaired bytes match the original exactly.
	resp, data = post(t, ts.URL+"/v1/specs?wait=1", body, "c")
	if resp.StatusCode != 200 {
		t.Fatalf("repair submit = %d: %s", resp.StatusCode, data)
	}
	var second specResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("corrupt record was served as a cache hit")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("repaired result differs from the original:\n%s\nvs\n%s", first.Result, second.Result)
	}

	sv := stats(t, ts)
	if sv.RepairedCells != 1 {
		t.Errorf("repaired_cells = %d, want 1", sv.RepairedCells)
	}
	if sv.Store.Corruptions != 1 || sv.Store.Quarantined != 1 {
		t.Errorf("store stats = %+v, want 1 corruption / 1 quarantined", sv.Store)
	}
	if sv.DeterminismMismatches != 0 {
		t.Errorf("determinism_mismatches = %d", sv.DeterminismMismatches)
	}
	// And the store is serving the repaired record on the read path.
	resp, data = get(t, ts.URL+"/v1/results/"+first.Fingerprint)
	if resp.StatusCode != 200 || !bytes.Equal(data, first.Result) {
		t.Errorf("result endpoint after repair = %d, identical=%v", resp.StatusCode, bytes.Equal(data, first.Result))
	}
}

func TestResultEndpointErrors(t *testing.T) {
	s, ts := testServer(t, nil)
	if resp, _ := get(t, ts.URL+"/v1/results/not-a-fingerprint"); resp.StatusCode != 400 {
		t.Errorf("malformed fp = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/results/0123456789abcdef"); resp.StatusCode != 404 {
		t.Errorf("unknown fp = %d, want 404", resp.StatusCode)
	}
	// A corrupt record 404s (after quarantine) rather than serving bad
	// bytes.
	if err := s.store.Put(fpA, []byte("record")); err != nil {
		t.Fatal(err)
	}
	corruptObject(t, s.store, fpA)
	resp, body := get(t, ts.URL+"/v1/results/"+fpA)
	if resp.StatusCode != 404 || !strings.Contains(string(body), "quarantined") {
		t.Errorf("corrupt fp = %d (%s), want 404 naming the quarantine", resp.StatusCode, body)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := testServer(t, nil)
	if resp, body := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain of an idle server: %v", err)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", resp.StatusCode)
	}
	resp, _ := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("late")), "c")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while drained = %d, want 503", resp.StatusCode)
	}
}

func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	s, ts := testServer(t, nil)
	s.runCells = blockingRunCells

	resp, data := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("wedged")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)
	deadline := time.Now().Add(5 * time.Second)
	for !s.jobActive.Load() {
		if time.Now().After(deadline) {
			t.Fatal("runner never started the job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	j := s.lookupJob(sub.Job)
	if j == nil || !j.state().Terminal() {
		t.Fatalf("wedged job not terminated by the drain deadline (state %v)", j.state())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.QueueDepth = 2 })
	s.runCells = blockingRunCells

	post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("runner-hog")), "c")
	deadline := time.Now().Add(5 * time.Second)
	for !s.jobActive.Load() {
		if time.Now().After(deadline) {
			t.Fatal("runner never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, data := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("queued-victim")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.Job, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	json.NewDecoder(dresp.Body).Decode(&v)
	dresp.Body.Close()
	if v.State != JobCanceled {
		t.Fatalf("cancelled queued job state = %s, want canceled", v.State)
	}
}

func TestEventsStreamNDJSON(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, data := post(t, ts.URL+"/v1/grids", mustJSON(t, testGrid("streamed")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)

	eresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var kinds []string
	cells := 0
	dec := json.NewDecoder(eresp.Body)
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err != nil {
			break // stream closes at the terminal event
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "cell" {
			cells++
			if !ValidFingerprint(ev.Fingerprint) {
				t.Errorf("cell event with bad fingerprint: %+v", ev)
			}
		}
	}
	if len(kinds) == 0 || kinds[0] != "queued" {
		t.Fatalf("event kinds = %v, want to start with queued", kinds)
	}
	if kinds[len(kinds)-1] != "done" {
		t.Errorf("event kinds = %v, want to end with done", kinds)
	}
	if cells != 2 {
		t.Errorf("saw %d cell events, want 2", cells)
	}
}

func TestBadSubmissionsAreRejected(t *testing.T) {
	_, ts := testServer(t, func(c *Config) { c.MaxCells = 1 })
	if resp, _ := post(t, ts.URL+"/v1/specs", []byte("{not json"), "c"); resp.StatusCode != 400 {
		t.Errorf("malformed spec = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/grids", []byte(`{"base":{},"axes":[{"path":"","values":[1]}]}`), "c"); resp.StatusCode != 400 {
		t.Errorf("bad grid axis = %d, want 400", resp.StatusCode)
	}
	// A grid over the cell cap is refused before any work happens.
	resp, body := post(t, ts.URL+"/v1/grids", mustJSON(t, testGrid("too-big")), "c")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized grid = %d (%s), want 413", resp.StatusCode, body)
	}
}
