// Package serve is the serving layer: a hardened, long-running
// simulation service over the scenario layer's determinism contract.
// Equal Spec fingerprints imply byte-identical results, so a result
// computed once can be served forever from a content-addressed store —
// the daemon (cmd/vmpd) validates submissions into fingerprints,
// schedules misses on the sweep worker pool, and answers repeats from
// disk.
//
// The package is explicitly *not* simulation-core: it owns wall
// clocks, sockets and fsync. Nothing in here may influence a
// simulation's bytes; the one bridge is context cancellation, which
// only ever ends runs whose results are discarded.
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store file format: payload || checksum || magic.
const (
	// storeMagic terminates every record; its absence means a torn or
	// foreign file.
	storeMagic = "VMS1"
	// trailerLen is the 8-byte FNV-1a checksum plus the 4-byte magic.
	trailerLen = 12
)

// Subdirectories of the store root. Object directories are the
// two-hex-digit fingerprint prefixes alongside these.
const (
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
)

// ErrNotFound reports a fingerprint with no stored result.
var ErrNotFound = errors.New("serve: result not found")

// CorruptError reports a stored record that failed verification on
// read. The file has already been moved to the quarantine directory
// when Quarantine is non-empty; the caller should treat the read as a
// miss and recompute.
type CorruptError struct {
	Fingerprint string
	Reason      string
	Quarantine  string // path the corrupt file was moved to ("" if the move failed)
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("serve: stored result %s corrupt: %s", e.Fingerprint, e.Reason)
}

// StoreStats are the store's integrity and traffic counters, exposed
// verbatim through /statsz.
type StoreStats struct {
	Puts              int64 `json:"puts"`
	Gets              int64 `json:"gets"`
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Corruptions       int64 `json:"corruptions"`
	Quarantined       int64 `json:"quarantined"`
	RecoveredPartials int64 `json:"recovered_partials"`
	Evictions         int64 `json:"evictions"`
}

// Store is a crash-safe content-addressed result store keyed by Spec
// fingerprint. Records live at <root>/<fp[:2]>/<fp>, written via
// temp-file + fsync + atomic rename with a checksum trailer, verified
// on every read. A record is immutable once written: equal
// fingerprints imply equal bytes, so an overwrite can only ever write
// the same content (the server cross-checks and counts any violation).
type Store struct {
	root string
	// writeMu serializes the rename+dirsync pair; concurrent writers of
	// *different* fingerprints would be safe without it, but the
	// directory fsync is simplest done under one lock.
	writeMu sync.Mutex
	// maxBytes caps the total object bytes on disk; 0 means unbounded.
	// Guarded by writeMu (only read on the write path).
	maxBytes int64

	puts, gets, hits, misses atomic.Int64
	corruptions, quarantined atomic.Int64
	recovered, evictions     atomic.Int64
}

// OpenStore opens (creating if needed) a store rooted at dir and runs
// the startup recovery scan: leftover temp files from a crashed writer
// are moved to quarantine, as are object files whose size cannot even
// hold the trailer. Full checksum verification happens on read (and on
// demand via Scrub).
func OpenStore(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, d := range []string{dir, filepath.Join(dir, tmpDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Puts:              s.puts.Load(),
		Gets:              s.gets.Load(),
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Corruptions:       s.corruptions.Load(),
		Quarantined:       s.quarantined.Load(),
		RecoveredPartials: s.recovered.Load(),
		Evictions:         s.evictions.Load(),
	}
}

// SetMaxBytes caps the store's total object bytes (0 removes the cap)
// and immediately sweeps down to the new limit — the startup sweep when
// called right after OpenStore. Records are evicted least-recently-used
// first; the store maintains its own recency via Chtimes on every hit,
// so the order survives relatime/noatime mounts.
func (s *Store) SetMaxBytes(n int64) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.maxBytes = n
	return s.evictLocked()
}

// evictLocked removes oldest-first (by the store-maintained access
// time, fingerprint as a deterministic tiebreak) until total object
// bytes fit under maxBytes. Caller holds writeMu.
func (s *Store) evictLocked() error {
	if s.maxBytes <= 0 {
		return nil
	}
	type object struct {
		fp    string
		path  string
		size  int64
		atime time.Time
	}
	var objs []object
	var total int64
	if err := s.walkObjects(func(fp, path string, size int64) {
		fi, err := os.Stat(path)
		if err != nil {
			return // raced with quarantine
		}
		objs = append(objs, object{fp, path, size, fi.ModTime()})
		total += size
	}); err != nil {
		return err
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(objs, func(i, j int) bool {
		if !objs[i].atime.Equal(objs[j].atime) {
			return objs[i].atime.Before(objs[j].atime)
		}
		return objs[i].fp < objs[j].fp
	})
	for _, o := range objs {
		if total <= s.maxBytes {
			break
		}
		if err := os.Remove(o.path); err != nil {
			continue // keep sweeping; the object stays counted against later sweeps
		}
		total -= o.size
		s.evictions.Add(1)
	}
	return nil
}

// ValidFingerprint reports whether fp is a well-formed content
// fingerprint: exactly 16 lowercase hex digits (scenario.Fingerprint's
// output format). The path layout derives from the fingerprint, so
// this is also the path-traversal guard: no separators, no dots, no
// uppercase aliases of the same object.
func ValidFingerprint(fp string) bool {
	if len(fp) != 16 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// objectPath maps a valid fingerprint to its on-disk location.
func (s *Store) objectPath(fp string) string {
	return filepath.Join(s.root, fp[:2], fp)
}

// checksum is FNV-1a over the payload — the same hash family the
// fingerprint itself uses, cheap and dependency-free.
func checksum(payload []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range payload {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// seal appends the checksum trailer to a payload.
func seal(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+trailerLen)
	out = append(out, payload...)
	sum := checksum(payload)
	for i := 0; i < 8; i++ {
		out = append(out, byte(sum>>(8*i)))
	}
	return append(out, storeMagic...)
}

// unseal verifies the trailer and returns the payload, or a reason the
// record is corrupt.
func unseal(data []byte) ([]byte, string) {
	if len(data) < trailerLen {
		return nil, fmt.Sprintf("%d bytes, shorter than the %d-byte trailer", len(data), trailerLen)
	}
	if string(data[len(data)-4:]) != storeMagic {
		return nil, "magic trailer missing (torn or foreign file)"
	}
	payload := data[:len(data)-trailerLen]
	var sum uint64
	for i := 0; i < 8; i++ {
		sum |= uint64(data[len(payload)+i]) << (8 * i)
	}
	if got := checksum(payload); got != sum {
		return nil, fmt.Sprintf("checksum mismatch: stored %016x, computed %016x", sum, got)
	}
	return payload, ""
}

// Put durably stores payload under fp: write to a private temp file,
// fsync it, atomically rename into place, fsync the directory. A crash
// at any point leaves either the old state or the new record — never a
// half-written object (a torn temp file is swept to quarantine by the
// next OpenStore).
func (s *Store) Put(fp string, payload []byte) error {
	if !ValidFingerprint(fp) {
		return fmt.Errorf("serve: invalid fingerprint %q", fp)
	}
	sealed := seal(payload)

	tmp, err := os.CreateTemp(filepath.Join(s.root, tmpDir), fp+".*.tmp")
	if err != nil {
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(sealed); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store put %s: fsync: %w", fp, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	dir := filepath.Join(s.root, fp[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}
	if err := os.Rename(tmpName, s.objectPath(fp)); err != nil {
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("serve: store put %s: %w", fp, err)
	}
	s.puts.Add(1)
	// Best-effort sweep while still holding writeMu: an eviction failure
	// must not fail the put that durably landed.
	_ = s.evictLocked()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get reads and verifies the record stored under fp. A missing record
// returns ErrNotFound; a record that fails verification is moved to
// quarantine and returns a *CorruptError — the caller recomputes and
// re-Puts (the repair path), and bad bytes are never returned.
func (s *Store) Get(fp string) ([]byte, error) {
	if !ValidFingerprint(fp) {
		return nil, fmt.Errorf("serve: invalid fingerprint %q", fp)
	}
	s.gets.Add(1)
	data, err := os.ReadFile(s.objectPath(fp))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("serve: store get %s: %w", fp, err)
	}
	payload, reason := unseal(data)
	if reason != "" {
		s.corruptions.Add(1)
		q := s.quarantine(s.objectPath(fp))
		s.misses.Add(1)
		return nil, &CorruptError{Fingerprint: fp, Reason: reason, Quarantine: q}
	}
	s.hits.Add(1)
	// Bump the record's recency so LRU eviction sees hits even on
	// relatime/noatime mounts (best-effort; a failure just ages it).
	now := time.Now()
	_ = os.Chtimes(s.objectPath(fp), now, now)
	return payload, nil
}

// Has reports whether a verified record exists without counting a
// get (used by admission decisions). It stats only; corruption is
// discovered (and quarantined) on the eventual Get.
func (s *Store) Has(fp string) bool {
	if !ValidFingerprint(fp) {
		return false
	}
	fi, err := os.Stat(s.objectPath(fp))
	return err == nil && fi.Size() >= trailerLen
}

// quarantine moves a bad file into the quarantine directory, keeping
// the evidence while removing it from the serving path. Returns the
// destination ("" if the move failed — the file is then removed so it
// cannot be served again).
func (s *Store) quarantine(path string) string {
	dst := filepath.Join(s.root, quarantineDir, filepath.Base(path))
	// Keep distinct incidents distinct: suffix until free.
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.root, quarantineDir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		return ""
	}
	s.quarantined.Add(1)
	return dst
}

// recover is the startup scan: quarantine temp files abandoned by a
// crashed writer and object files too short to hold the trailer, and
// drop foreign names from object directories.
func (s *Store) recover() error {
	// Abandoned temp files: a crash between CreateTemp and rename.
	tmps, err := os.ReadDir(filepath.Join(s.root, tmpDir))
	if err != nil {
		return err
	}
	for _, e := range tmps {
		if e.IsDir() {
			continue
		}
		s.recovered.Add(1)
		s.quarantine(filepath.Join(s.root, tmpDir, e.Name()))
	}

	// Object directories: every entry must be a well-formed fingerprint
	// under its own prefix and at least trailer-sized.
	return s.walkObjects(func(fp, path string, size int64) {
		if size < trailerLen {
			s.corruptions.Add(1)
			s.quarantine(path)
		}
	})
}

// walkObjects visits every object file in deterministic (sorted)
// order. Entries that are not well-formed fingerprints in the right
// prefix directory are quarantined rather than visited.
func (s *Store) walkObjects(fn func(fp, path string, size int64)) error {
	prefixes, err := os.ReadDir(s.root)
	if err != nil {
		return err
	}
	for _, p := range prefixes {
		name := p.Name()
		if !p.IsDir() || name == tmpDir || name == quarantineDir {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.root, name))
		if err != nil {
			return err
		}
		for _, e := range entries {
			path := filepath.Join(s.root, name, e.Name())
			fp := e.Name()
			if e.IsDir() || !ValidFingerprint(fp) || !strings.HasPrefix(fp, name) {
				s.quarantine(path)
				continue
			}
			fi, err := e.Info()
			if err != nil {
				continue
			}
			fn(fp, path, fi.Size())
		}
	}
	return nil
}

// Fingerprints lists every stored fingerprint, sorted.
func (s *Store) Fingerprints() ([]string, error) {
	var out []string
	if err := s.walkObjects(func(fp, _ string, _ int64) { out = append(out, fp) }); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Scrub verifies the checksum of every stored record, quarantining
// failures, and reports how many records were checked and how many
// were corrupt. It is the deep version of the startup scan, run on
// demand (tests, CI, an operator endpoint).
func (s *Store) Scrub() (checked, corrupt int, err error) {
	var paths [][2]string
	if err := s.walkObjects(func(fp, path string, _ int64) {
		paths = append(paths, [2]string{fp, path})
	}); err != nil {
		return 0, 0, err
	}
	for _, fpPath := range paths {
		data, err := os.ReadFile(fpPath[1])
		if err != nil {
			continue // raced with quarantine or removal
		}
		checked++
		if _, reason := unseal(data); reason != "" {
			corrupt++
			s.corruptions.Add(1)
			s.quarantine(fpPath[1])
		}
	}
	return checked, corrupt, nil
}
