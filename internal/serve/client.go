package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"vmp/internal/scenario"
)

// Client talks to a vmpd daemon. The zero value plus a BaseURL is
// usable; all methods are safe for concurrent use.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8347".
	BaseURL string
	// ClientID is sent as X-Client-ID for quota accounting ("" = the
	// daemon falls back to the remote address).
	ClientID string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// NewClient builds a client for a daemon base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// RetryAfterError reports a shed submission (429): the daemon asked the
// client to come back after RetryAfter.
type RetryAfterError struct {
	RetryAfter time.Duration
	Message    string
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("serve: shed (retry after %s): %s", e.RetryAfter, e.Message)
}

// StatusError reports any other non-2xx daemon response.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: daemon returned %d: %s", e.Code, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes errors uniformly.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set("X-Client-ID", c.ClientID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, nil
	}
	msg := string(data)
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if secs < 1 {
			secs = 1
		}
		return nil, &RetryAfterError{RetryAfter: time.Duration(secs) * time.Second, Message: msg}
	}
	return nil, &StatusError{Code: resp.StatusCode, Message: msg}
}

// SpecResult is a spec submission's answer.
type SpecResult struct {
	Fingerprint string
	Cached      bool
	// Result is the stored record (a scenario.CellResult), byte-for-byte
	// as the daemon persists it.
	Result json.RawMessage
}

// RunSpec submits a spec and blocks until its result is available
// (served from cache or computed under the daemon's job budget).
func (c *Client) RunSpec(ctx context.Context, spec scenario.Spec) (*SpecResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	data, err := c.do(ctx, "POST", "/v1/specs?wait=1", body)
	if err != nil {
		return nil, err
	}
	var sr specResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, fmt.Errorf("serve: decoding spec response: %w", err)
	}
	return &SpecResult{Fingerprint: sr.Fingerprint, Cached: sr.Cached, Result: sr.Result}, nil
}

// GridSubmission is an accepted (202) grid submission.
type GridSubmission struct {
	Job          string
	Cells        int
	CachedCells  int
	Fingerprints []string
	// Sweep is set instead of Job when the whole grid was answered from
	// the cache (a 200).
	Sweep *scenario.SweepResult
}

// SubmitGrid submits a grid. A fully cached grid returns the assembled
// sweep immediately; otherwise the returned Job is tracked with
// WaitJob/Job.
func (c *Client) SubmitGrid(ctx context.Context, g scenario.Grid) (*GridSubmission, error) {
	body, err := json.Marshal(g)
	if err != nil {
		return nil, err
	}
	data, err := c.do(ctx, "POST", "/v1/grids", body)
	if err != nil {
		return nil, err
	}
	var cached struct {
		Cached bool                  `json:"cached"`
		Sweep  *scenario.SweepResult `json:"sweep"`
	}
	if err := json.Unmarshal(data, &cached); err == nil && cached.Cached {
		return &GridSubmission{Sweep: cached.Sweep, Cells: len(cached.Sweep.Cells), CachedCells: len(cached.Sweep.Cells)}, nil
	}
	var sub submitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		return nil, fmt.Errorf("serve: decoding grid response: %w", err)
	}
	return &GridSubmission{
		Job: sub.Job, Cells: sub.Cells, CachedCells: sub.CachedCells, Fingerprints: sub.Fingerprints,
	}, nil
}

// Job fetches a job snapshot.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	data, err := c.do(ctx, "GET", "/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// WaitJob polls a job until it is terminal (or ctx fires).
func (c *Client) WaitJob(ctx context.Context, id string) (*JobView, error) {
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.State.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Events streams a job's NDJSON progress, invoking fn per event until
// the job is terminal, the stream breaks, or ctx fires.
func (c *Client) Events(ctx context.Context, id string, fn func(JobEvent)) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return &StatusError{Code: resp.StatusCode, Message: string(data)}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		fn(ev)
	}
}

// Result fetches the stored record for a fingerprint, verified bytes
// exactly as persisted.
func (c *Client) Result(ctx context.Context, fp string) ([]byte, error) {
	return c.do(ctx, "GET", "/v1/results/"+url.PathEscape(fp), nil)
}

// CellResult fetches and decodes the stored record for a fingerprint.
func (c *Client) CellResult(ctx context.Context, fp string) (*scenario.CellResult, error) {
	data, err := c.Result(ctx, fp)
	if err != nil {
		return nil, err
	}
	var cr scenario.CellResult
	if err := json.Unmarshal(data, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobView, error) {
	data, err := c.do(ctx, "DELETE", "/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Stats fetches the daemon's /statsz counters.
func (c *Client) Stats(ctx context.Context) (*StatsView, error) {
	data, err := c.do(ctx, "GET", "/statsz", nil)
	if err != nil {
		return nil, err
	}
	var sv StatsView
	if err := json.Unmarshal(data, &sv); err != nil {
		return nil, err
	}
	return &sv, nil
}

// Healthy reports whether the daemon answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	_, err := c.do(ctx, "GET", "/healthz", nil)
	return err == nil
}
