package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock advances only when told, so quota tests never sleep.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time             { return c.t }
func (c *fakeClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(q *Quotas, c *fakeClock) *Quotas { q.now = c.now; return q }

func TestQuotaBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	q := withClock(NewQuotas(1, 3), clock)

	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("c"); !ok {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	ok, retry := q.Allow("c")
	if ok {
		t.Fatal("4th immediate admission allowed past burst")
	}
	if retry < time.Second {
		t.Errorf("Retry-After = %v, want >= 1s", retry)
	}
	// One token accrues per second at rate 1.
	clock.advance(1100 * time.Millisecond)
	if ok, _ := q.Allow("c"); !ok {
		t.Fatal("admission refused after refill window")
	}
	if ok, _ := q.Allow("c"); ok {
		t.Fatal("second admission allowed from a single refilled token")
	}
}

func TestQuotaClientsIsolated(t *testing.T) {
	clock := newFakeClock()
	q := withClock(NewQuotas(1, 1), clock)
	if ok, _ := q.Allow("a"); !ok {
		t.Fatal("client a refused its burst")
	}
	if ok, _ := q.Allow("b"); !ok {
		t.Fatal("client b throttled by client a's spend")
	}
	if ok, _ := q.Allow("a"); ok {
		t.Fatal("client a admitted past its bucket")
	}
}

func TestQuotaPruneBoundsMemory(t *testing.T) {
	clock := newFakeClock()
	q := withClock(NewQuotas(10, 2), clock)
	for i := 0; i < maxQuotaClients; i++ {
		q.Allow(fmt.Sprintf("client-%d", i))
	}
	if q.Clients() != maxQuotaClients {
		t.Fatalf("Clients = %d, want %d", q.Clients(), maxQuotaClients)
	}
	// Everyone refills; the next new client triggers the prune.
	clock.advance(time.Minute)
	q.Allow("the-straw")
	if n := q.Clients(); n > 2 {
		t.Fatalf("Clients = %d after prune, want <= 2", n)
	}
}

func TestQuotaBurstFloor(t *testing.T) {
	q := withClock(NewQuotas(1, 0), newFakeClock())
	if ok, _ := q.Allow("c"); !ok {
		t.Fatal("burst<1 must normalize to a bucket that can admit")
	}
}
