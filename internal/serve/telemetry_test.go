package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"vmp/internal/scenario"
)

// waitTerminal polls the job view until it reaches a terminal state.
func waitTerminal(t *testing.T, url string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := get(t, url)
		if resp.StatusCode != 200 {
			t.Fatalf("job get = %d: %s", resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("job decode: %v\n%s", err, body)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMetricszExposition(t *testing.T) {
	_, ts := testServer(t, nil)

	// One computed job, then the same spec again as a cache hit.
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("expo")), "tenant-a")
		if resp.StatusCode != 200 {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, body := get(t, ts.URL+"/metricsz")
	if resp.StatusCode != 200 {
		t.Fatalf("/metricsz = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text format", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE vmpd_submissions_total counter",
		"vmpd_submissions_total 2",
		"vmpd_computed_cells_total 1",
		"vmpd_cache_hit_cells_total 1",
		`vmpd_jobs_finished_total{state="done"} 1`,
		`vmpd_client_submissions_total{client="tenant-a"} 2`,
		"# TYPE vmpd_job_run_seconds histogram",
		`vmpd_job_run_seconds_bucket{le="+Inf"} 1`,
		"vmpd_job_run_seconds_count 1",
		"vmpd_job_queue_wait_seconds_count 1",
		"# TYPE vmpd_queue_depth gauge",
		"vmpd_queue_cap 16",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}

	// The exposition is deterministically ordered: metric names appear
	// sorted, so two scrapes of unchanged state are byte-identical.
	resp2, body2 := get(t, ts.URL+"/metricsz")
	if resp2.StatusCode != 200 {
		t.Fatalf("second scrape = %d", resp2.StatusCode)
	}
	strip := func(s string) string {
		var kept []string
		for _, ln := range strings.Split(s, "\n") {
			// Gauges (uptime) and histogram sums move between scrapes;
			// compare the stable counter lines only.
			if strings.HasPrefix(ln, "vmpd_") && strings.Contains(ln, "_total") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(text) != strip(string(body2)) {
		t.Errorf("counter lines changed between idle scrapes:\n%s\n--\n%s", strip(text), strip(string(body2)))
	}
	var names []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, "# TYPE ") {
			names = append(names, strings.Fields(ln)[2])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("metric families not sorted: %v", names)
	}
}

func TestStatszIsViewOverRegistry(t *testing.T) {
	s, ts := testServer(t, nil)
	post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("stats-view")), "c")
	post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("stats-view")), "c")

	sv := stats(t, ts)
	m := s.met
	for _, c := range []struct {
		name string
		json int64
		reg  int64
	}{
		{"submissions", sv.Submissions, m.submissions.Value()},
		{"shed", sv.Shed, m.shed.Value()},
		{"quota_rejected", sv.QuotaRejected, m.quotaRejected.Value()},
		{"cache_hit_cells", sv.CacheHitCells, m.cacheHitCells.Value()},
		{"computed_cells", sv.ComputedCells, m.computedCells.Value()},
		{"faulted_cells", sv.FaultedCells, m.faultedCells.Value()},
		{"repaired_cells", sv.RepairedCells, m.repairedCells.Value()},
		{"determinism_mismatches", sv.DeterminismMismatches, m.mismatches.Value()},
	} {
		if c.json != c.reg {
			t.Errorf("/statsz %s = %d but registry holds %d (two sources of truth)", c.name, c.json, c.reg)
		}
	}
	if sv.Submissions != 2 || sv.ComputedCells != 1 || sv.CacheHitCells != 1 {
		t.Errorf("unexpected counts: %+v", sv)
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, nil)

	spec := smallSpec("traced")
	spec.Obs = scenario.ObsSpec{Stream: true}
	resp, data := post(t, ts.URL+"/v1/specs?trace=1", mustJSON(t, spec), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)
	waitTerminal(t, ts.URL+"/v1/jobs/"+sub.Job)

	tresp, body := get(t, ts.URL+"/v1/jobs/"+sub.Job+"/trace")
	if tresp.StatusCode != 200 {
		t.Fatalf("/trace = %d: %s", tresp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	threads := map[string]bool{}
	spanNames := map[string]bool{}
	simRows := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "thread_name":
			threads[ev.Args["name"].(string)] = true
		case ev.TID >= 2 && ev.TID < 10:
			spanNames[ev.Name] = true
		case ev.Ph == "X" || ev.Ph == "i":
			simRows++
		}
	}
	// Service spans and sim events share the document: svc tracks on
	// top, the bus/board tracks beneath.
	for _, want := range []string{"svc:job", "svc:cells", "svc:store", "bus"} {
		if !threads[want] {
			t.Errorf("trace missing thread %q (have %v)", want, threads)
		}
	}
	for _, want := range []string{"queue", "run", "put", "cell-done"} {
		if !spanNames[want] {
			t.Errorf("trace missing service span %q (have %v)", want, spanNames)
		}
	}
	if simRows == 0 {
		t.Error("trace=1 submission with Obs.Stream produced no sim event rows")
	}

	if r, _ := get(t, ts.URL+"/v1/jobs/nope/trace"); r.StatusCode != 404 {
		t.Errorf("trace of unknown job = %d, want 404", r.StatusCode)
	}
}

func TestJobTraceWithoutOptIn(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, data := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("untraced")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)
	waitTerminal(t, ts.URL+"/v1/jobs/"+sub.Job)

	tresp, body := get(t, ts.URL+"/v1/jobs/"+sub.Job+"/trace")
	if tresp.StatusCode != 200 {
		t.Fatalf("/trace = %d", tresp.StatusCode)
	}
	text := string(body)
	// Service spans are always recorded; sim tracks only with ?trace=1.
	if !strings.Contains(text, `"svc:job"`) {
		t.Error("untraced job lost its service spans")
	}
	if strings.Contains(text, `"bus"`) {
		t.Error("untraced job invented sim event rows")
	}
}

func TestEventsStreamClientDisconnect(t *testing.T) {
	s, ts := testServer(t, nil)
	s.runCells = blockingRunCells

	resp, data := post(t, ts.URL+"/v1/specs", mustJSON(t, smallSpec("abandoned")), "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub submitResponse
	json.Unmarshal(data, &sub)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+sub.Job+"/events", nil)
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()

	// Read the first event, then walk away mid-stream: the job is
	// wedged, so without the disconnect the stream would never end.
	dec := json.NewDecoder(eresp.Body)
	var ev JobEvent
	if err := dec.Decode(&ev); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if ev.Kind != "queued" {
		t.Fatalf("first event kind = %q", ev.Kind)
	}
	cancel()

	// The handler's deferred span records only when it returns; its
	// appearance proves the streaming goroutine exited rather than
	// leaking on a parked waitEvents.
	j := s.lookupJob(sub.Job)
	if j == nil {
		t.Fatal("job vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := false
		for _, sp := range j.spanList() {
			if sp.Track == "stream" && sp.Name == "events" {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("events handler never exited after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQuotaRefillExactBoundary(t *testing.T) {
	q := NewQuotas(2, 1) // 2 tokens/s, burst 1
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	if ok, _ := q.Allow("c"); !ok {
		t.Fatal("fresh bucket must admit")
	}
	// Bucket exactly empty. One token accrues after exactly 500ms; a
	// hair earlier the bucket is still short and must refuse with a
	// whole-second Retry-After.
	now = now.Add(500*time.Millisecond - time.Nanosecond)
	ok, retry := q.Allow("c")
	if ok {
		t.Fatal("admitted with a fractionally short bucket")
	}
	if retry < time.Second {
		t.Fatalf("retry = %v, want >= 1s (whole seconds, rounded up)", retry)
	}
	// The refusal above advanced b.last; accrue the remaining shortfall
	// from there. At the exact refill instant the bucket holds exactly
	// one token and must admit (>= 1, not > 1).
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.Allow("c"); !ok {
		t.Fatal("refused at the exact one-token refill instant")
	}
	// And the spend drained it again.
	if ok, _ := q.Allow("c"); ok {
		t.Fatal("admitted from a just-drained bucket")
	}
}

func TestDisabledTelemetryStillServes(t *testing.T) {
	s, ts := testServer(t, func(c *Config) { c.DisableTelemetry = true })
	resp, body := post(t, ts.URL+"/v1/specs?wait=1", mustJSON(t, smallSpec("dark")), "c")
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if r, _ := get(t, ts.URL+"/metricsz"); r.StatusCode != 404 {
		t.Errorf("/metricsz with telemetry disabled = %d, want 404", r.StatusCode)
	}
	// /statsz keeps its shape; the counters just read zero.
	sv := stats(t, ts)
	if sv.Submissions != 0 {
		t.Errorf("disabled-telemetry submissions = %d, want 0", sv.Submissions)
	}
	if s.Metrics() != nil {
		t.Error("DisableTelemetry left a live registry")
	}
}

// TestTelemetryOverheadGuard is the CI 5% budget check: the full
// enabled telemetry path (counters, histograms, spans, slog) against
// the all-nil DisableTelemetry path, interleaved rounds, median vs
// median. Opt-in via VMP_OVERHEAD_GUARD=1 because wall-clock ratios
// are meaningless on loaded laptops.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("VMP_OVERHEAD_GUARD") == "" {
		t.Skip("set VMP_OVERHEAD_GUARD=1 to run the telemetry overhead guard")
	}

	newServer := func(disable bool) (*Server, func()) {
		dir, err := os.MkdirTemp("", "vmpd-guard-*")
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			StoreDir:         filepath.Join(dir, "store"),
			Workers:          2,
			JobBudget:        30 * time.Second,
			DisableTelemetry: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, func() { s.Close(); os.RemoveAll(dir) }
	}
	enabled, cleanE := newServer(false)
	disabled, cleanD := newServer(true)
	defer cleanE()
	defer cleanD()

	seq := 0
	round := func(s *Server) time.Duration {
		const jobsPerRound = 4
		start := time.Now()
		for i := 0; i < jobsPerRound; i++ {
			seq++
			spec := smallSpec(fmt.Sprintf("guard-%d", seq))
			// Macro-sized cells so simulation work, not per-job fixed
			// cost, is the denominator; unique ref counts defeat the
			// cache (equal fingerprints would be served from disk).
			spec.Workload.Refs = 20_000 + seq
			cell := scenario.Cell{Name: spec.Name, Spec: spec}
			fp, err := spec.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			j := s.newJobRecord("spec", spec.Name, "guard", jobWork{
				cells: []scenario.Cell{cell}, fps: []string{fp},
			}, 30*time.Second)
			if !s.enqueue(j) {
				t.Fatal("queue full")
			}
			for !j.state().Terminal() {
				time.Sleep(200 * time.Microsecond)
			}
			if st := j.state(); st != JobDone {
				t.Fatalf("guard job state = %s", st)
			}
		}
		return time.Since(start)
	}

	// Warmup both paths, then interleave measured rounds so machine
	// drift hits both alike.
	round(enabled)
	round(disabled)
	const rounds = 7
	var on, off []time.Duration
	for i := 0; i < rounds; i++ {
		off = append(off, round(disabled))
		on = append(on, round(enabled))
	}
	median := func(d []time.Duration) time.Duration {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return d[len(d)/2]
	}
	mOn, mOff := median(on), median(off)
	t.Logf("telemetry enabled median %v, disabled median %v (ratio %.3f)",
		mOn, mOff, float64(mOn)/float64(mOff))
	if float64(mOn) > float64(mOff)*1.05 {
		t.Errorf("telemetry overhead %.1f%% exceeds the 5%% budget (on=%v off=%v)",
			(float64(mOn)/float64(mOff)-1)*100, mOn, mOff)
	}
}
