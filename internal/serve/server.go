package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vmp/internal/obs"
	"vmp/internal/scenario"
	"vmp/internal/telemetry"
)

// Config tunes the daemon. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// StoreDir is the result-store root (default "vmpd-store").
	StoreDir string
	// Workers is the cell concurrency inside one job (default
	// GOMAXPROCS). Jobs themselves run one at a time: the queue is the
	// backpressure boundary, the worker pool the parallelism boundary.
	Workers int
	// QueueDepth bounds the submission queue; a full queue sheds with
	// 429 + Retry-After (default 16).
	QueueDepth int
	// QuotaRate and QuotaBurst are the per-client token bucket:
	// QuotaRate admissions per second, QuotaBurst capacity (defaults
	// 5/s, burst 10).
	QuotaRate  float64
	QuotaBurst float64
	// JobBudget is the default per-job wall-clock budget; a client may
	// request less, or more up to MaxJobBudget (defaults 2m / 10m).
	JobBudget    time.Duration
	MaxJobBudget time.Duration
	// MaxCells caps a grid expansion (default 1024).
	MaxCells int
	// MaxBodyBytes caps a submission body (default 8 MB).
	MaxBodyBytes int64
	// StoreMaxBytes caps the result store's total object bytes;
	// past it the least-recently-used records are evicted (swept at
	// startup and after every put). 0 means unbounded.
	StoreMaxBytes int64
	// Shed starts the daemon in load-shedding mode: compute
	// submissions are rejected, cache hits still served.
	Shed bool
	// Metrics is the telemetry registry to register the daemon's
	// metrics in; nil means the server creates its own (telemetry is on
	// by default — /statsz and /metricsz are views over it).
	Metrics *telemetry.Registry
	// DisableTelemetry runs the daemon with nil telemetry handles: the
	// single-branch disabled path throughout, no registry. /statsz
	// counter fields then read zero. Only the overhead guard should
	// want this; it is ignored when Metrics is set.
	DisableTelemetry bool
	// Log receives structured request/job logs; nil discards.
	Log *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.StoreDir == "" {
		c.StoreDir = "vmpd-store"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.QuotaRate <= 0 {
		c.QuotaRate = 5
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 10
	}
	if c.JobBudget <= 0 {
		c.JobBudget = 2 * time.Minute
	}
	if c.MaxJobBudget <= 0 {
		c.MaxJobBudget = 10 * time.Minute
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// maxJobs bounds the in-memory job table; past it the oldest terminal
// jobs are evicted.
const maxJobs = 1024

// Server is the vmpd daemon core: admission control, the job queue and
// runner, and the fingerprint-keyed result store, exposed as an
// http.Handler.
type Server struct {
	cfg    Config
	store  *Store
	quotas *Quotas

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string

	// repairPending remembers fingerprints whose stored record was
	// found corrupt (and quarantined); the next successful recompute
	// of such a fingerprint counts as a repair.
	repairPending sync.Map

	queue  chan *job
	jobSeq atomic.Int64

	shedding atomic.Bool
	draining atomic.Bool
	// jobActive marks a job mid-run (for drain and queue-depth
	// accounting).
	jobActive atomic.Bool

	// met holds the telemetry handles (all nil when telemetry is
	// disabled); reg is the registry /metricsz renders. The counters
	// that used to be hand-rolled atomics here now live in the
	// registry, and /statsz reads them back through met.
	met *serverMetrics
	reg *telemetry.Registry

	log    *slog.Logger
	reqSeq atomic.Int64

	// runCells is the sweep entry point, a field so tests can substitute
	// a hostile implementation (the production value is
	// scenario.RunCells).
	runCells func(name string, cells []scenario.Cell, opts scenario.RunOptions) (*scenario.SweepResult, error)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	runnerDone chan struct{}
	started    time.Time
}

// New opens the store (running its recovery scan) and starts the job
// runner. Callers own the HTTP listener; see Handler.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	// The startup sweep: enforce the size cap against whatever survived
	// the recovery scan before serving anything.
	if err := store.SetMaxBytes(cfg.StoreMaxBytes); err != nil {
		return nil, fmt.Errorf("serve: store eviction sweep: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	if reg == nil && !cfg.DisableTelemetry {
		reg = telemetry.NewRegistry()
	}
	logger := cfg.Log
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		quotas:     NewQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
		runCells:   scenario.RunCells,
		met:        newServerMetrics(reg),
		reg:        reg,
		log:        logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		runnerDone: make(chan struct{}),
		started:    time.Now(),
	}
	registerServerGauges(reg, s)
	s.shedding.Store(cfg.Shed)
	go s.runner()
	return s, nil
}

// Metrics exposes the telemetry registry (nil when telemetry is
// disabled) so embedders can add their own metrics to the same
// /metricsz page.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Store exposes the underlying result store (tests, tooling).
func (s *Server) Store() *Store { return s.store }

// SetShedding toggles load-shedding mode: compute submissions are
// rejected with 429 while cache hits keep being served.
func (s *Server) SetShedding(on bool) { s.shedding.Store(on) }

// Close stops the server immediately: in-flight work is cancelled and
// the runner drained. Use Drain for the graceful version.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.baseCancel()
	<-s.runnerDone
	return nil
}

// Drain is the graceful shutdown: new submissions are refused (503),
// queued and running jobs keep going until done or ctx (the drain
// deadline) fires, at which point the rest are cancelled. It returns
// nil when everything finished, or the context error when the
// deadline cut work short.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for len(s.queue) > 0 || s.jobActive.Load() {
		select {
		case <-ctx.Done():
			s.baseCancel()
			<-s.runnerDone
			return ctx.Err()
		case <-tick.C:
		}
	}
	s.baseCancel()
	<-s.runnerDone
	return nil
}

// runner executes queued jobs one at a time. Cells inside a job run on
// the sweep worker pool; the single-runner discipline makes the queue
// depth the real backpressure bound.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for {
		select {
		case <-s.baseCtx.Done():
			// Cancelled shutdown: fail the rest of the queue explicitly.
			for {
				select {
				case j := <-s.queue:
					s.finishJob(j, JobCanceled, "server shutting down", "")
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// jobWork is a job's payload: the expanded cells and their
// fingerprints in expansion order.
type jobWork struct {
	cells []scenario.Cell
	fps   []string
}

// enqueue admits a job to the bounded queue. false means shed.
func (s *Server) enqueue(j *job) bool {
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}

// finishJob moves a job to a terminal state and emits the matching
// event.
func (s *Server) finishJob(j *job, state JobState, errMsg, dump string) {
	j.update(func(v *JobView) {
		v.State = state
		v.Finished = time.Now().UTC()
		if errMsg != "" {
			v.Err = errMsg
		}
		if dump != "" && v.Dump == "" {
			v.Dump = dump
		}
	})
	kind := map[JobState]string{JobDone: "done", JobFailed: "failed", JobCanceled: "canceled"}[state]
	j.emit(JobEvent{Kind: kind, Err: errMsg})
	cinc(s.met.jobsFinished.WithLabel(kind))
	v := j.View()
	s.log.Info("job finished",
		"job", v.ID, "state", kind, "cells", v.Cells, "cache_hits", v.CacheHits,
		"failed_cells", v.FailedCells, "err", errMsg)
}

// runJob executes one admitted job: answer cached cells from the
// store (repairing corrupt records by recomputing them), run the rest
// on the worker pool under the job budget, and persist every fresh
// result. A panic anywhere in the job machinery is contained into a
// failed-job record — the daemon itself must survive any submission.
func (s *Server) runJob(j *job) {
	s.jobActive.Store(true)
	defer s.jobActive.Store(false)
	if j.state() != JobQueued { // cancelled while queued
		return
	}

	defer func() {
		if r := recover(); r != nil {
			cinc(s.met.faultedCells)
			s.finishJob(j, JobFailed, fmt.Sprintf("job panicked: %v", r), string(debug.Stack()))
		}
	}()

	// The queue span covers admission to run start; the run span covers
	// everything from here to the terminal state.
	runStart := time.Now()
	j.recordSpan("job", "queue", j.epoch, runStart, "")
	hsince(s.met.queueWait, j.epoch)
	defer func() {
		j.recordSpan("job", "run", runStart, time.Now(), string(j.state()))
		hsince(s.met.runDur, runStart)
	}()

	ctx, cancel := context.WithTimeout(s.baseCtx, j.budget)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	work := j.work
	captureTrace := j.captureTrace
	j.mu.Unlock()

	j.update(func(v *JobView) {
		v.State = JobRunning
		v.Started = time.Now().UTC()
	})
	j.emit(JobEvent{Kind: "started"})

	// Pass 1: serve cache hits, collect misses (including corrupt
	// records, which recompute-and-repair).
	var misses []scenario.Cell
	for i, cell := range work.cells {
		fp := work.fps[i]
		if _, err := s.getRecord(fp); err == nil {
			cinc(s.met.cacheHitCells)
			j.markSpan("cells", "cache-hit", time.Now(), fp)
			j.update(func(v *JobView) { v.DoneCells++; v.CacheHits++ })
			j.emit(JobEvent{Kind: "cell", Cell: cell.Name, Fingerprint: fp, Cached: true})
			continue
		}
		misses = append(misses, cell)
	}

	if len(misses) > 0 {
		opts := scenario.RunOptions{
			Workers: s.cfg.Workers,
			Ctx:     ctx,
			Guard:   true,
			CellDone: func(cr scenario.CellResult) {
				s.onCellDone(j, cr)
			},
		}
		if captureTrace {
			// Retain the sim event stream of traced jobs for the
			// combined service+sim Perfetto export. Only specs that
			// enabled obs streaming (spec.obs.stream) carry events.
			opts.ResultDone = func(cr scenario.CellResult, rr *scenario.RunResult) {
				if cr.Err != "" || rr == nil || rr.Machine == nil {
					return
				}
				j.addSimEvents(rr.Machine.Sink().Stream())
			}
		}
		_, err := s.runCells(j.view.Name, misses, opts)
		if err != nil {
			// Context cancellation: budget exhausted or shutdown/cancel.
			state, msg := JobCanceled, "job canceled"
			if errors.Is(err, context.DeadlineExceeded) {
				state, msg = JobFailed, fmt.Sprintf("job budget %s exceeded", j.budget)
			}
			s.finishJob(j, state, msg, "")
			return
		}
	}

	v := j.View()
	if v.FailedCells > 0 {
		s.finishJob(j, JobFailed, fmt.Sprintf("%d/%d cells failed: %s", v.FailedCells, v.Cells, firstCellError(j)), "")
		return
	}
	s.finishJob(j, JobDone, "", "")
}

// firstCellError digs the first failed cell's message out of the event
// history for the job-level error summary.
func firstCellError(j *job) string {
	evs, _ := j.eventsSince(0)
	for _, ev := range evs {
		if ev.Kind == "cell" && ev.Err != "" {
			return ev.Err
		}
	}
	return "unknown cell error"
}

// onCellDone persists one freshly computed cell and advances the job
// record. Persisted bytes are cross-checked against any existing
// record: equal fingerprints must mean equal bytes, and a violation is
// counted as a determinism mismatch (and the store keeps the fresh
// bytes).
func (s *Server) onCellDone(j *job, cr scenario.CellResult) {
	if cr.Err != "" {
		cinc(s.met.faultedCells)
		j.markSpan("cells", "cell-failed", time.Now(), cr.Name)
		j.update(func(v *JobView) {
			v.DoneCells++
			v.FailedCells++
			if cr.Dump != "" && v.Dump == "" {
				v.Dump = cr.Dump
			}
		})
		j.emit(JobEvent{Kind: "cell", Cell: cr.Name, Fingerprint: cr.Fingerprint, Err: cr.Err})
		return
	}

	payload, err := encodeResult(cr)
	if err == nil && ValidFingerprint(cr.Fingerprint) {
		if old, gerr := s.store.Get(cr.Fingerprint); gerr == nil && !bytes.Equal(old, payload) {
			cinc(s.met.mismatches)
		}
		putStart := time.Now()
		if perr := s.store.Put(cr.Fingerprint, payload); perr == nil {
			hsince(s.met.storePut, putStart)
			j.recordSpan("store", "put", putStart, time.Now(), cr.Fingerprint)
			if _, pending := s.repairPending.LoadAndDelete(cr.Fingerprint); pending {
				cinc(s.met.repairedCells)
			}
		}
	}
	cinc(s.met.computedCells)
	j.markSpan("cells", "cell-done", time.Now(), cr.Fingerprint)
	j.update(func(v *JobView) { v.DoneCells++ })
	j.emit(JobEvent{Kind: "cell", Cell: cr.Name, Fingerprint: cr.Fingerprint})
}

// getRecord reads a fingerprint through the store, remembering corrupt
// records (already quarantined by the store) so their eventual
// recompute is counted as a repair.
func (s *Server) getRecord(fp string) ([]byte, error) {
	payload, err := s.store.Get(fp)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			s.repairPending.Store(fp, true)
		}
	}
	return payload, err
}

// encodeResult canonicalizes a cell result for storage: the dump (a
// fault artifact, never present on a successful cell) and any
// transient fields are stripped so the stored bytes are a pure
// function of the fingerprint.
func encodeResult(cr scenario.CellResult) ([]byte, error) {
	stored := scenario.CellResult{
		Name:        cr.Name,
		Fingerprint: cr.Fingerprint,
		Spec:        cr.Spec,
		Summary:     cr.Summary,
		Violations:  cr.Violations,
	}
	return json.Marshal(stored)
}

// --- HTTP layer ---

// Handler returns the daemon's HTTP mux, wrapped in the structured
// request log / request-ID middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/specs", s.handleSpec)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("GET /v1/results/{fp}", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s.logRequests(mux)
}

// statusWriter captures the response status for the request log. It
// passes Flush through so NDJSON streaming keeps working behind the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests assigns each request an id (honoring a short inbound
// X-Request-ID), echoes it in the response, and logs one structured
// line per request — the slog path that replaced ad-hoc prints.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" || len(rid) > 64 {
			rid = fmt.Sprintf("r%08d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"id", rid, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "client", clientID(r),
			"dur_ms", float64(time.Since(start))/float64(time.Millisecond))
	})
}

// handleMetricsz serves the Prometheus text exposition of the
// telemetry registry.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: one Perfetto document
// with the job's service spans on top and, for jobs submitted with
// ?trace=1 and an event-streaming spec, the sim events below them.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteServiceTrace(w, j.spanList(), j.simEventList())
}

// clientID identifies the caller for quota accounting: the first of
// X-Client-ID, X-API-Key, and the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if id := r.Header.Get("X-API-Key"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shedError writes the 429 + Retry-After shed response.
func shedError(w http.ResponseWriter, retryAfter time.Duration, why string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests, "%s", why)
}

// shed charges one shed submission to the global and per-client
// counters.
func (s *Server) shed(r *http.Request) {
	cinc(s.met.shed)
	cinc(s.met.clientShed.WithLabel(clientID(r)))
}

// admit runs the shared admission checks for compute submissions:
// drain refusal, per-client quota, shed mode. It reports whether the
// request may proceed to the queue (and has already written the
// response when not).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	if ok, retry := s.quotas.Allow(clientID(r)); !ok {
		cinc(s.met.quotaRejected)
		cinc(s.met.clientQuota.WithLabel(clientID(r)))
		shedError(w, retry, "client quota exhausted")
		return false
	}
	return true
}

// budgetFor resolves the job budget: ?budget_ms= clamped to
// [1s, MaxJobBudget], defaulting to JobBudget.
func (s *Server) budgetFor(r *http.Request) time.Duration {
	b := s.cfg.JobBudget
	if q := r.URL.Query().Get("budget_ms"); q != "" {
		if ms, err := strconv.Atoi(q); err == nil && ms > 0 {
			b = time.Duration(ms) * time.Millisecond
		}
	}
	if b < 50*time.Millisecond {
		b = 50 * time.Millisecond
	}
	if b > s.cfg.MaxJobBudget {
		b = s.cfg.MaxJobBudget
	}
	return b
}

// newJobRecord registers a job in the table, evicting the oldest
// terminal jobs past the cap.
func (s *Server) newJobRecord(kind, name, client string, work jobWork, budget time.Duration) *job {
	id := fmt.Sprintf("j%06d", s.jobSeq.Add(1))
	j := newJob(JobView{
		ID:      id,
		Kind:    kind,
		Name:    name,
		State:   JobQueued,
		Client:  client,
		Created: time.Now().UTC(),
		Cells:   len(work.cells),
	}, budget)
	j.work = work
	j.view.Fingerprints = append([]string(nil), work.fps...)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	if len(s.jobOrder) > maxJobs {
		kept := s.jobOrder[:0]
		for _, jid := range s.jobOrder {
			if old := s.jobs[jid]; old != nil && old.state().Terminal() && len(s.jobs) > maxJobs {
				delete(s.jobs, jid)
				continue
			}
			kept = append(kept, jid)
		}
		s.jobOrder = kept
	}
	j.emit(JobEvent{Kind: "queued"})
	return j
}

// lookupJob finds a job by id.
func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// submitResponse is the 202 body for admitted compute jobs.
type submitResponse struct {
	Job          string   `json:"job"`
	Cells        int      `json:"cells"`
	CachedCells  int      `json:"cached_cells"`
	Fingerprints []string `json:"fingerprints"`
}

// specResponse is the 200 body for a cache-answered spec submission.
type specResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Cached      bool            `json:"cached"`
	Result      json.RawMessage `json:"result"`
}

// handleSpec answers POST /v1/specs: a single-Spec submission. Cache
// hits return immediately with the stored result; misses are admitted
// to the queue (or shed). ?wait=1 blocks until the job finishes and
// returns the result inline.
func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	cinc(s.met.submissions)
	cinc(s.met.clientSubmits.WithLabel(clientID(r)))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	norm := *spec
	if err := norm.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, err := norm.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Cache hits are served even while shedding or over quota: they
	// cost a disk read, not a simulation.
	if payload, err := s.getRecord(fp); err == nil {
		cinc(s.met.cacheHitCells)
		writeJSON(w, http.StatusOK, specResponse{Fingerprint: fp, Cached: true, Result: payload})
		return
	}

	if !s.admit(w, r) {
		return
	}
	if s.shedding.Load() {
		s.shed(r)
		shedError(w, 5*time.Second, "load shedding: compute submissions rejected")
		return
	}
	if norm.Name == "" {
		norm.Name = "spec-" + fp
	}
	work := jobWork{cells: []scenario.Cell{{Name: norm.Name, Spec: norm}}, fps: []string{fp}}
	j := s.newJobRecord("spec", norm.Name, clientID(r), work, s.budgetFor(r))
	j.setCaptureTrace(r.URL.Query().Get("trace") != "")
	if !s.enqueue(j) {
		s.dropJob(j)
		s.shed(r)
		shedError(w, 2*time.Second, "submission queue full")
		return
	}

	if r.URL.Query().Get("wait") != "" {
		s.waitAndReply(w, r, j, fp)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Job: j.view.ID, Cells: 1, Fingerprints: []string{fp}})
}

// dropJob removes a job that was never admitted to the queue.
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.view.ID)
	for i, id := range s.jobOrder {
		if id == j.view.ID {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

// waitAndReply blocks until the job is terminal, then serves the
// result (for single-spec jobs) or the job record.
func (s *Server) waitAndReply(w http.ResponseWriter, r *http.Request, j *job, fp string) {
	var after int64
	for {
		evs, terminal := j.waitEvents(after, r.Context().Done())
		for _, ev := range evs {
			after = ev.Seq
		}
		if terminal {
			break
		}
		if r.Context().Err() != nil {
			httpError(w, http.StatusRequestTimeout, "client gave up waiting")
			return
		}
	}
	v := j.View()
	if v.State == JobDone {
		if payload, err := s.store.Get(fp); err == nil {
			writeJSON(w, http.StatusOK, specResponse{Fingerprint: fp, Cached: false, Result: payload})
			return
		}
	}
	writeJSON(w, http.StatusInternalServerError, v)
}

// handleGrid answers POST /v1/grids: expand, fingerprint every cell,
// serve all-cached grids immediately, admit the rest to the queue.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	cinc(s.met.submissions)
	cinc(s.met.clientSubmits.WithLabel(clientID(r)))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	grid, err := scenario.ParseGrid(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := grid.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(cells) == 0 {
		httpError(w, http.StatusBadRequest, "grid expands to no cells")
		return
	}
	if len(cells) > s.cfg.MaxCells {
		httpError(w, http.StatusRequestEntityTooLarge, "grid expands to %d cells; cap is %d", len(cells), s.cfg.MaxCells)
		return
	}
	fps := make([]string, len(cells))
	cached := 0
	for i, c := range cells {
		fp, err := c.Spec.Fingerprint()
		if err != nil {
			httpError(w, http.StatusBadRequest, "cell %s: %v", c.Name, err)
			return
		}
		fps[i] = fp
		if s.store.Has(fp) {
			cached++
		}
	}

	// A fully cached grid is assembled from the store without touching
	// the queue — the "sweeps become cache hits" path. Any corrupt
	// record discovered here downgrades to a compute submission.
	if cached == len(cells) {
		if res, ok := s.assembleCached(grid.Name, cells, fps); ok {
			cadd(s.met.cacheHitCells, int64(len(cells)))
			writeJSON(w, http.StatusOK, map[string]any{"cached": true, "sweep": res})
			return
		}
	}

	if !s.admit(w, r) {
		return
	}
	if s.shedding.Load() {
		s.shed(r)
		shedError(w, 5*time.Second, "load shedding: compute submissions rejected")
		return
	}
	name := grid.Name
	if name == "" {
		name = "grid"
	}
	j := s.newJobRecord("grid", name, clientID(r), jobWork{cells: cells, fps: fps}, s.budgetFor(r))
	j.setCaptureTrace(r.URL.Query().Get("trace") != "")
	if !s.enqueue(j) {
		s.dropJob(j)
		s.shed(r)
		shedError(w, 2*time.Second, "submission queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		Job: j.view.ID, Cells: len(cells), CachedCells: cached, Fingerprints: fps,
	})
}

// assembleCached builds a SweepResult from stored records. false when
// any record is missing or corrupt (the caller then queues a compute
// job, which repairs).
func (s *Server) assembleCached(name string, cells []scenario.Cell, fps []string) (*scenario.SweepResult, bool) {
	res := &scenario.SweepResult{Name: name, Cells: make([]scenario.CellResult, len(cells))}
	for i, fp := range fps {
		payload, err := s.getRecord(fp)
		if err != nil {
			return nil, false
		}
		var cr scenario.CellResult
		if err := json.Unmarshal(payload, &cr); err != nil {
			return nil, false
		}
		res.Cells[i] = cr
	}
	return res, true
}

// handleResult serves GET /v1/results/{fp}: the stored, verified
// record bytes. Corruption quarantines and 404s — bad bytes are never
// served; resubmitting the spec recomputes and repairs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !ValidFingerprint(fp) {
		httpError(w, http.StatusBadRequest, "malformed fingerprint %q", fp)
		return
	}
	payload, err := s.getRecord(fp)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			httpError(w, http.StatusNotFound, "stored result was corrupt and has been quarantined; resubmit the spec to recompute")
			return
		}
		if errors.Is(err, ErrNotFound) {
			httpError(w, http.StatusNotFound, "no result for fingerprint %s", fp)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleJobEvents streams a job's progress as NDJSON until the job is
// terminal or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	streamStart := time.Now()
	defer func() { j.recordSpan("stream", "events", streamStart, time.Now(), "") }()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var after int64
	for {
		evs, terminal := j.waitEvents(after, r.Context().Done())
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			after = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal || r.Context().Err() != nil {
			return
		}
	}
}

// handleJobCancel answers DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state := j.view.State
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case JobQueued:
		s.finishJob(j, JobCanceled, "canceled by client", "")
	case JobRunning:
		if cancel != nil {
			cancel()
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleHealthz reports liveness; a draining server answers 503 so
// load balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// StatsView is the /statsz payload.
type StatsView struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Draining      bool           `json:"draining"`
	Shedding      bool           `json:"shedding"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCap      int            `json:"queue_cap"`
	JobActive     bool           `json:"job_active"`
	JobStates     map[string]int `json:"job_states"`
	Submissions   int64          `json:"submissions"`
	Shed          int64          `json:"shed"`
	QuotaRejected int64          `json:"quota_rejected"`
	QuotaClients  int            `json:"quota_clients"`
	CacheHitCells int64          `json:"cache_hit_cells"`
	ComputedCells int64          `json:"computed_cells"`
	FaultedCells  int64          `json:"faulted_cells"`
	RepairedCells int64          `json:"repaired_cells"`
	// DeterminismMismatches counts stored-vs-recomputed byte
	// divergences — always zero unless the determinism contract broke.
	DeterminismMismatches int64      `json:"determinism_mismatches"`
	HitRatio              float64    `json:"hit_ratio"`
	Store                 StoreStats `json:"store"`
}

// Stats snapshots the server counters (also the /statsz body).
func (s *Server) Stats() StatsView {
	states := map[string]int{}
	s.mu.Lock()
	ids := append([]string(nil), s.jobOrder...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		states[string(j.state())]++
	}
	// The counter fields are Value() reads over the telemetry registry
	// — /statsz is a JSON view over the same source of truth /metricsz
	// renders (zero when telemetry is disabled).
	hits, computed := s.met.cacheHitCells.Value(), s.met.computedCells.Value()
	ratio := 0.0
	if hits+computed > 0 {
		ratio = float64(hits) / float64(hits+computed)
	}
	return StatsView{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining.Load(),
		Shedding:      s.shedding.Load(),
		QueueDepth:    len(s.queue),
		QueueCap:      cap(s.queue),
		JobActive:     s.jobActive.Load(),
		JobStates:     states,
		Submissions:   s.met.submissions.Value(),
		Shed:          s.met.shed.Value(),
		QuotaRejected: s.met.quotaRejected.Value(),
		QuotaClients:  s.quotas.Clients(),
		CacheHitCells: hits,
		ComputedCells: computed,
		FaultedCells:  s.met.faultedCells.Value(),
		RepairedCells: s.met.repairedCells.Value(),

		DeterminismMismatches: s.met.mismatches.Value(),
		HitRatio:              ratio,
		Store:                 s.store.Stats(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeJSON writes v as a JSON response. Deliberately not indented:
// embedded json.RawMessage result bytes must pass through unchanged so
// API responses stay byte-identical to the stored records.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
