package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const fpA = "0123456789abcdef"

func TestStorePutGetRoundtrip(t *testing.T) {
	s := testStore(t)
	payload := []byte(`{"name":"x","summary":{"refs":42}}`)
	if err := s.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(fpA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip mutated payload: %q vs %q", got, payload)
	}
	if !s.Has(fpA) {
		t.Error("Has = false after Put")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Corruptions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := testStore(t)
	if _, err := s.Get(fpA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if s.Stats().Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Stats().Misses)
	}
}

func TestStoreRejectsBadFingerprints(t *testing.T) {
	s := testStore(t)
	for _, fp := range []string{
		"", "short", "0123456789ABCDEF", "0123456789abcdeg",
		"../../etc/passwd", "0123456789abcde/", "0123456789abcdef0",
	} {
		if err := s.Put(fp, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid fingerprint", fp)
		}
		if _, err := s.Get(fp); err == nil {
			t.Errorf("Get(%q) accepted an invalid fingerprint", fp)
		}
	}
}

// corruptObject flips one payload byte of a stored record in place.
func corruptObject(t *testing.T, s *Store, fp string) {
	t.Helper()
	path := s.objectPath(fp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBitFlipQuarantinesOnRead(t *testing.T) {
	s := testStore(t)
	payload := []byte(`{"ok":true}`)
	if err := s.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	corruptObject(t, s, fpA)

	_, err := s.Get(fpA)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Fingerprint != fpA || !strings.Contains(ce.Reason, "checksum mismatch") {
		t.Errorf("CorruptError = %+v", ce)
	}
	if ce.Quarantine == "" {
		t.Fatal("corrupt file was not quarantined")
	}
	if _, err := os.Stat(ce.Quarantine); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	// The serving path no longer has the record: a re-read is a plain
	// miss, and a re-Put repairs.
	if _, err := s.Get(fpA); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine, Get = %v, want ErrNotFound", err)
	}
	if err := s.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(fpA)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("repair failed: %q, %v", got, err)
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Quarantined != 1 {
		t.Errorf("stats = %+v, want 1 corruption / 1 quarantined", st)
	}
}

func TestStoreTruncationDetected(t *testing.T) {
	s := testStore(t)
	payload := []byte(`{"a":"` + strings.Repeat("x", 200) + `"}`)
	if err := s.Put(fpA, payload); err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int64{0, 3, int64(len(payload)) - 1, int64(len(payload)) + trailerLen - 1} {
		s2 := testStore(t)
		if err := s2.Put(fpA, payload); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(s2.objectPath(fpA), keep); err != nil {
			t.Fatal(err)
		}
		var ce *CorruptError
		if _, err := s2.Get(fpA); !errors.As(err, &ce) {
			t.Errorf("truncate to %d: err = %v, want *CorruptError", keep, err)
		}
	}
}

func TestStoreMagicStrippedDetected(t *testing.T) {
	s := testStore(t)
	if err := s.Put(fpA, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(fpA)
	data, _ := os.ReadFile(path)
	// Keep the length but clobber the magic: simulates a torn write
	// that landed other bytes at the tail.
	copy(data[len(data)-4:], "XXXX")
	os.WriteFile(path, data, 0o644)
	var ce *CorruptError
	if _, err := s.Get(fpA); !errors.As(err, &ce) || !strings.Contains(ce.Reason, "magic") {
		t.Fatalf("err = %v, want magic-trailer CorruptError", err)
	}
}

func TestStoreRecoverySweepsPartials(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	s, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpA, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a torn temp file.
	if err := os.WriteFile(filepath.Join(root, tmpDir, fpA+".123.tmp"), []byte("half a reco"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn object: shorter than the trailer.
	shortFP := "ffffffffffffffff"
	os.MkdirAll(filepath.Join(root, "ff"), 0o755)
	if err := os.WriteFile(filepath.Join(root, "ff", shortFP), []byte("xy"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a foreign name sitting in an object directory.
	if err := os.WriteFile(filepath.Join(root, "ff", "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.RecoveredPartials != 1 {
		t.Errorf("recovered_partials = %d, want 1", st.RecoveredPartials)
	}
	if st.Quarantined != 3 {
		t.Errorf("quarantined = %d, want 3 (tmp, short object, foreign name)", st.Quarantined)
	}
	// The good record survived recovery intact.
	got, err := s2.Get(fpA)
	if err != nil || string(got) != "good" {
		t.Fatalf("good record lost in recovery: %q, %v", got, err)
	}
	// The torn object is gone from the serving path.
	if _, err := s2.Get(shortFP); !errors.Is(err, ErrNotFound) {
		t.Errorf("torn object still served: %v", err)
	}
	// tmp/ is empty again.
	tmps, _ := os.ReadDir(filepath.Join(root, tmpDir))
	if len(tmps) != 0 {
		t.Errorf("tmp/ still has %d entries after recovery", len(tmps))
	}
}

func TestStoreScrub(t *testing.T) {
	s := testStore(t)
	fps := []string{"00aaaaaaaaaaaaaa", "01bbbbbbbbbbbbbb", "02cccccccccccccc"}
	for i, fp := range fps {
		if err := s.Put(fp, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	corruptObject(t, s, fps[1])
	checked, corrupt, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 3 || corrupt != 1 {
		t.Fatalf("Scrub = (%d checked, %d corrupt), want (3, 1)", checked, corrupt)
	}
	// Scrub removed the corrupt record from the serving path.
	if _, err := s.Get(fps[1]); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt record still served after Scrub: %v", err)
	}
	list, err := s.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{fps[0], fps[2]}
	if len(list) != 2 || list[0] != want[0] || list[1] != want[1] {
		t.Errorf("Fingerprints = %v, want %v", list, want)
	}
}

func TestStoreOverwriteSameBytesIsIdempotent(t *testing.T) {
	s := testStore(t)
	payload := []byte("stable")
	for i := 0; i < 3; i++ {
		if err := s.Put(fpA, payload); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get(fpA)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("idempotent overwrite broke the record: %q, %v", got, err)
	}
}

func TestValidFingerprint(t *testing.T) {
	valid := []string{"0123456789abcdef", "0000000000000000", "ffffffffffffffff"}
	invalid := []string{
		"", "0", "0123456789abcde", "0123456789abcdef0",
		"0123456789ABCDEF", "0123456789abcdeg", "../3456789abcdef",
		"0123456789abcde.", "0123456789abcde/", "0123456789abcde ",
	}
	for _, fp := range valid {
		if !ValidFingerprint(fp) {
			t.Errorf("ValidFingerprint(%q) = false", fp)
		}
	}
	for _, fp := range invalid {
		if ValidFingerprint(fp) {
			t.Errorf("ValidFingerprint(%q) = true", fp)
		}
	}
}

// FuzzValidFingerprintPath fuzzes the fingerprint/path codec: any
// accepted fingerprint must map to a path strictly inside the store
// root and survive a Put/Get roundtrip; no input may panic.
func FuzzValidFingerprintPath(f *testing.F) {
	f.Add("0123456789abcdef")
	f.Add("../../etc/passwd")
	f.Add("0123456789ABCDEF")
	f.Add(strings.Repeat("a", 16))
	f.Add("0123456789abcde\x00")
	root := filepath.Join(f.TempDir(), "store")
	s, err := OpenStore(root)
	if err != nil {
		f.Fatal(err)
	}
	absRoot, _ := filepath.Abs(root)
	f.Fuzz(func(t *testing.T, fp string) {
		ok := ValidFingerprint(fp)
		if !ok {
			// Rejected inputs must be rejected everywhere.
			if err := s.Put(fp, []byte("x")); err == nil {
				t.Fatalf("Put accepted invalid fingerprint %q", fp)
			}
			if _, err := s.Get(fp); err == nil {
				t.Fatalf("Get accepted invalid fingerprint %q", fp)
			}
			return
		}
		// Accepted inputs must stay inside the store root.
		p, err := filepath.Abs(s.objectPath(fp))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(p, absRoot+string(filepath.Separator)) {
			t.Fatalf("fingerprint %q escapes the store root: %s", fp, p)
		}
		payload := []byte("fuzz:" + fp)
		if err := s.Put(fp, payload); err != nil {
			t.Fatalf("Put(%q): %v", fp, err)
		}
		got, err := s.Get(fp)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip(%q) = %q, %v", fp, got, err)
		}
	})
}

// FuzzUnseal fuzzes the record codec: unseal must never panic, must
// accept every sealed payload unchanged, and must reject any
// single-byte mutation of a sealed record.
func FuzzUnseal(f *testing.F) {
	f.Add([]byte(nil), -1)
	f.Add([]byte("{}"), -1)
	f.Add([]byte(strings.Repeat("x", 100)), 5)
	f.Add([]byte("VMS1"), 0)
	f.Fuzz(func(t *testing.T, payload []byte, flip int) {
		sealed := seal(payload)
		got, reason := unseal(sealed)
		if reason != "" {
			t.Fatalf("unseal(seal(%q)) rejected: %s", payload, reason)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("unseal(seal(%q)) = %q", payload, got)
		}
		// Raw (unsealed) bytes must not pass verification by luck of
		// the fuzzer more than cryptographically-unlikely coincidence —
		// but FNV is not crypto, so only check it never panics.
		unseal(payload)
		if flip >= 0 && len(sealed) > 0 {
			mut := append([]byte(nil), sealed...)
			mut[flip%len(mut)] ^= 0x01
			if got, reason := unseal(mut); reason == "" && !bytes.Equal(got, payload) {
				t.Fatalf("single-bit flip at %d accepted with different payload", flip%len(mut))
			}
		}
	})
}

// age back-dates a stored record so eviction order is deterministic
// regardless of filesystem timestamp granularity.
func age(t *testing.T, s *Store, fp string, d time.Duration) {
	t.Helper()
	when := time.Now().Add(-d)
	if err := os.Chtimes(s.objectPath(fp), when, when); err != nil {
		t.Fatal(err)
	}
}

// TestStoreEvictionLRU pins the size cap: the sweep removes records
// oldest-access-first until total object bytes fit, counts each
// eviction, and leaves fresher records untouched.
func TestStoreEvictionLRU(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("x"), 100) // 112 bytes sealed
	fps := []string{
		"aa00000000000000",
		"bb00000000000000",
		"cc00000000000000",
	}
	for i, fp := range fps {
		if err := s.Put(fp, payload); err != nil {
			t.Fatal(err)
		}
		age(t, s, fp, time.Duration(len(fps)-i)*time.Hour) // aa oldest
	}

	// Room for exactly two sealed records.
	if err := s.SetMaxBytes(2 * 112); err != nil {
		t.Fatal(err)
	}
	if s.Has(fps[0]) {
		t.Error("oldest record survived the sweep")
	}
	if !s.Has(fps[1]) || !s.Has(fps[2]) {
		t.Error("sweep removed records that fit under the cap")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}

	// A hit bumps recency: bb (touched now) outlives cc (an hour old).
	if _, err := s.Get(fps[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMaxBytes(112); err != nil {
		t.Fatal(err)
	}
	if s.Has(fps[2]) {
		t.Error("stale record outlived the record a Get just touched")
	}
	if !s.Has(fps[1]) {
		t.Error("just-read record was evicted")
	}
	if st := s.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
}

// TestStoreEvictionOnPut pins the steady-state path: with a cap set,
// every put sweeps, so the store never stays over the limit.
func TestStoreEvictionOnPut(t *testing.T) {
	s := testStore(t)
	if err := s.SetMaxBytes(3 * 112); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 100)
	for i := 0; i < 8; i++ {
		fp := fmt.Sprintf("%02d00000000000000", i)
		if err := s.Put(fp, payload); err != nil {
			t.Fatal(err)
		}
		age(t, s, fp, time.Duration(8-i)*time.Minute)
	}
	fps, err := s.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) > 3 {
		t.Errorf("store holds %d records, cap allows 3: %v", len(fps), fps)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Error("no evictions counted")
	}
	// Lifting the cap stops the sweeps.
	if err := s.SetMaxBytes(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ff00000000000000", payload); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Fingerprints()
	if len(after) != len(fps)+1 {
		t.Errorf("uncapped put still evicted: %d -> %d records", len(fps), len(after))
	}
}
