package serve

import (
	"time"

	"vmp/internal/telemetry"
)

// serverMetrics holds the daemon's telemetry handles. The struct is
// always present on a Server; with telemetry disabled every handle is
// nil and each guarded emission site reduces to its single branch (the
// same discipline internal/obs uses for the sim-side sink). The
// hand-rolled /statsz atomics this replaces live on as Value() reads
// over these counters — the registry is the one source of truth.
type serverMetrics struct {
	submissions   *telemetry.Counter
	shed          *telemetry.Counter
	quotaRejected *telemetry.Counter
	cacheHitCells *telemetry.Counter
	computedCells *telemetry.Counter
	faultedCells  *telemetry.Counter
	repairedCells *telemetry.Counter
	mismatches    *telemetry.Counter

	// jobsFinished is labeled by terminal state (done/failed/canceled);
	// the client families attribute quota rejections and sheds to the
	// client that caused them (bounded cardinality, see telemetry.Family).
	jobsFinished  *telemetry.Family
	clientQuota   *telemetry.Family
	clientShed    *telemetry.Family
	clientSubmits *telemetry.Family

	// Job-lifecycle latency distributions, in seconds.
	queueWait *telemetry.Histogram
	runDur    *telemetry.Histogram
	storePut  *telemetry.Histogram
}

// newServerMetrics registers the daemon's metrics. A nil registry
// yields all-nil handles (telemetry disabled).
func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		submissions:   reg.Counter("vmpd_submissions_total", "Compute submissions received (specs and grids)."),
		shed:          reg.Counter("vmpd_shed_total", "Submissions shed (queue full or shed mode)."),
		quotaRejected: reg.Counter("vmpd_quota_rejected_total", "Submissions rejected by per-client quota."),
		cacheHitCells: reg.Counter("vmpd_cache_hit_cells_total", "Cells answered from the result store."),
		computedCells: reg.Counter("vmpd_computed_cells_total", "Cells computed by the simulator."),
		faultedCells:  reg.Counter("vmpd_faulted_cells_total", "Cells that errored or panicked (contained)."),
		repairedCells: reg.Counter("vmpd_repaired_cells_total", "Corrupt stored records recomputed and repaired."),
		mismatches:    reg.Counter("vmpd_determinism_mismatches_total", "Stored-vs-recomputed byte divergences (must stay 0)."),

		jobsFinished:  reg.CounterFamily("vmpd_jobs_finished_total", "Jobs reaching a terminal state.", "state"),
		clientQuota:   reg.CounterFamily("vmpd_client_quota_rejected_total", "Quota rejections per client.", "client"),
		clientShed:    reg.CounterFamily("vmpd_client_shed_total", "Sheds per client.", "client"),
		clientSubmits: reg.CounterFamily("vmpd_client_submissions_total", "Submissions per client.", "client"),

		queueWait: reg.Histogram("vmpd_job_queue_wait_seconds", "Admission-to-run wait per job.", nil),
		runDur:    reg.Histogram("vmpd_job_run_seconds", "Run-to-terminal duration per job.", nil),
		storePut:  reg.Histogram("vmpd_store_put_seconds", "Durable store write latency per computed cell.", telemetry.StorePutBuckets),
	}
}

// registerServerGauges wires the live-read gauges: values that already
// exist on the Server and are read at scrape time instead of being
// double-booked. No-op on a nil registry.
func registerServerGauges(reg *telemetry.Registry, s *Server) {
	reg.GaugeFunc("vmpd_queue_depth", "Jobs waiting in the submission queue.", func() float64 {
		return float64(len(s.queue))
	})
	reg.GaugeFunc("vmpd_queue_cap", "Submission queue capacity.", func() float64 {
		return float64(cap(s.queue))
	})
	reg.GaugeFunc("vmpd_job_active", "1 while a job is mid-run.", func() float64 {
		return b2f(s.jobActive.Load())
	})
	reg.GaugeFunc("vmpd_draining", "1 while the daemon refuses new work to drain.", func() float64 {
		return b2f(s.draining.Load())
	})
	reg.GaugeFunc("vmpd_shedding", "1 while compute submissions are shed.", func() float64 {
		return b2f(s.shedding.Load())
	})
	reg.GaugeFunc("vmpd_quota_clients", "Clients tracked by the quota table.", func() float64 {
		return float64(s.quotas.Clients())
	})
	reg.GaugeFunc("vmpd_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	// The store owns its eviction counter (sweeps run inside Put, under
	// the store's own lock), so it is surfaced live rather than
	// double-booked into a registry counter.
	reg.GaugeFunc("vmpd_store_evictions_total", "Records evicted by the store's LRU size cap.", func() float64 {
		return float64(s.store.Stats().Evictions)
	})
	reg.GaugeFunc("vmpd_store_max_bytes", "Configured store size cap (0 = unbounded).", func() float64 {
		return float64(s.cfg.StoreMaxBytes)
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// The guarded emission helpers: the one `!= nil` branch the nilsink
// analyzer demands lives here, so call sites stay single-line and the
// disabled path is statically single-branch.

func cinc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func cadd(c *telemetry.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

func hsince(h *telemetry.Histogram, start time.Time) {
	if h != nil {
		h.ObserveSince(start)
	}
}
