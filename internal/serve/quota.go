package serve

import (
	"sync"
	"time"
)

// maxQuotaClients bounds the per-client bucket map: past this, idle
// (fully refilled) buckets are pruned on the next Allow, so an
// adversary cycling client IDs cannot grow server memory without
// bound.
const maxQuotaClients = 4096

// quotaBucket is one client's token bucket.
type quotaBucket struct {
	tokens float64
	last   time.Time
}

// Quotas is a per-client token-bucket admission filter: each client id
// accumulates rate tokens per second up to burst, and every admitted
// submission spends one. The zero client id is legal (anonymous
// clients share one bucket).
type Quotas struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	clients map[string]*quotaBucket
	// now is the clock, injectable so tests need no sleeping.
	now func() time.Time
}

// NewQuotas builds a quota filter granting rate tokens/second with the
// given burst capacity. rate must be positive; burst < 1 normalizes to
// 1 (a bucket that can never admit is useless).
func NewQuotas(rate, burst float64) *Quotas {
	if burst < 1 {
		burst = 1
	}
	return &Quotas{
		rate:    rate,
		burst:   burst,
		clients: make(map[string]*quotaBucket),
		now:     time.Now,
	}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it reports false plus how long until one token accrues — the
// Retry-After the handler returns with the 429.
func (q *Quotas) Allow(client string) (bool, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()

	b := q.clients[client]
	if b == nil {
		if len(q.clients) >= maxQuotaClients {
			q.pruneLocked(now)
		}
		b = &quotaBucket{tokens: q.burst, last: now}
		q.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}

	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	retry := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if retry < time.Second {
		retry = time.Second // Retry-After is whole seconds; round up
	}
	return false, retry
}

// pruneLocked drops buckets that have fully refilled — clients idle
// long enough that forgetting them is indistinguishable from
// remembering them.
func (q *Quotas) pruneLocked(now time.Time) {
	for id, b := range q.clients {
		if b.tokens+now.Sub(b.last).Seconds()*q.rate >= q.burst {
			delete(q.clients, id)
		}
	}
}

// Clients reports the number of tracked client buckets.
func (q *Quotas) Clients() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.clients)
}
