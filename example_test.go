package vmp_test

import (
	"fmt"

	"vmp"
)

// Two processors share a page through the ownership protocol: the
// writer takes the page private; the reader's fill forces a write-back
// and downgrade.
func Example() {
	m, _ := vmp.New(vmp.Config{Processors: 2})
	m.EnsureSpace(1)
	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Store(0x1000, 42)
	})
	m.RunProgram(1, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Idle(100 * vmp.Microsecond)
		fmt.Println("read:", c.Load(0x1000))
	})
	m.Run()
	fmt.Println("violations:", len(m.CheckInvariants()))
	// Output:
	// read: 42
	// violations: 0
}

// Cold-start miss ratios fall as the cache grows — the Figure 4
// methodology in three lines.
func ExampleSimulateMissRatio() {
	refs, _ := vmp.GenerateTrace("edit", 11, 100_000)
	small := vmp.SimulateMissRatio(vmp.CacheGeometry(64<<10, 256, 4), refs)
	large := vmp.SimulateMissRatio(vmp.CacheGeometry(256<<10, 256, 4), refs)
	fmt.Println("miss ratio falls with cache size:", small > large)
	// Output:
	// miss ratio falls with cache size: true
}

// Machine code runs with every instruction fetch going through the
// virtually addressed cache.
func ExampleAssemble() {
	m, _ := vmp.New(vmp.Config{Processors: 1})
	prog, _ := vmp.Assemble(`
		addi r1, r0, 6
		addi r2, r0, 7
		mul  r3, r1, r2
		halt
	`)
	vmp.RunAssembly(m, 0, 1, prog, vmp.AsmRunConfig{Base: 0x10000},
		func(r vmp.AsmResult, err error) {
			fmt.Println("r3 =", r.Regs[3])
		})
	m.Run()
	// Output:
	// r3 = 42
}

// A notification lock (the paper's kernel primitive) guards a counter
// across four processors without cache-page thrashing.
func ExampleKernel() {
	m, _ := vmp.New(vmp.Config{Processors: 4})
	k, _ := vmp.NewKernel(m, 1)
	m.EnsureSpace(1)
	m.Prefault(1, []uint32{0x2000})
	lock, _ := k.NewNotifyLock()
	for i := 0; i < 4; i++ {
		m.RunProgram(i, func(c *vmp.CPU) {
			c.SetASID(1)
			for n := 0; n < 5; n++ {
				lock.Acquire(c)
				c.Store(0x2000, c.Load(0x2000)+1)
				lock.Release(c)
			}
		})
	}
	m.Run()
	w, _ := m.VM.Translate(1, 0x2000, false, false)
	fmt.Println("counter:", m.Mem.ReadWord(w.PAddr))
	// Output:
	// counter: 20
}
