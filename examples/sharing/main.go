// Sharing: a producer/consumer pipeline over kernel mailboxes, and a
// head-to-head of test-and-set spinning vs the paper's notification
// locks on the same critical-section workload (Section 5.4).
//
// Run with: go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	pipeline()
	lockShootout()
}

// pipeline moves work items from a producer CPU to a consumer CPU
// through a bus-monitor mailbox: the consumer's action-table entry for
// the mailbox frame is set to notify (11), so it sleeps until the
// producer's notify transaction interrupts it.
func pipeline() {
	m, err := vmp.New(vmp.Config{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	k, err := vmp.NewKernel(m, 2)
	if err != nil {
		log.Fatal(err)
	}
	mb, err := k.NewMailbox(2)
	if err != nil {
		log.Fatal(err)
	}

	const items = 5
	m.RunProgram(0, func(c *vmp.CPU) {
		for i := uint32(1); i <= items; i++ {
			c.Compute(500) // produce
			mb.Send(c, []uint32{i, i * i})
			fmt.Printf("[%v] producer sent item %d\n", c.Now(), i)
		}
	})
	var sum uint32
	m.RunProgram(1, func(c *vmp.CPU) {
		for i := 0; i < items; i++ {
			msg := mb.Recv(c)
			sum += msg[1]
			fmt.Printf("[%v] consumer got %v\n", c.Now(), msg)
			c.Compute(300) // consume
		}
	})
	m.Run()
	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	fmt.Printf("pipeline done: sum of squares = %d, %d messages\n\n", sum, k.Stats().MessagesSent)
}

// lockShootout runs the same counter workload under both lock styles
// and prints the consistency traffic each causes.
func lockShootout() {
	const procs, iters = 4, 25
	type result struct {
		elapsed  vmp.Time
		busUtil  float64
		conflict uint64
	}
	run := func(useNotify bool) result {
		m, err := vmp.New(vmp.Config{Processors: procs})
		if err != nil {
			log.Fatal(err)
		}
		k, err := vmp.NewKernel(m, 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.EnsureSpace(1); err != nil {
			log.Fatal(err)
		}
		if err := m.Prefault(1, []uint32{0x1000, 0x2000}); err != nil {
			log.Fatal(err)
		}
		var acquire, release func(c *vmp.CPU)
		if useNotify {
			l, err := k.NewNotifyLock()
			if err != nil {
				log.Fatal(err)
			}
			acquire, release = l.Acquire, l.Release
		} else {
			l := k.NewSpinLock(1, 0x1000)
			acquire, release = l.Acquire, l.Release
		}
		for i := 0; i < procs; i++ {
			i := i
			m.RunProgram(i, func(c *vmp.CPU) {
				c.SetASID(1)
				c.Idle(vmp.Time(i) * vmp.Microsecond)
				for n := 0; n < iters; n++ {
					acquire(c)
					v := c.Load(0x2000)
					c.Compute(100)
					c.Store(0x2000, v+1)
					release(c)
					c.Compute(30)
				}
			})
		}
		end := m.Run()
		if v := m.CheckInvariants(); len(v) != 0 {
			log.Fatalf("violations: %v", v)
		}
		w, err := m.VM.Translate(1, 0x2000, false, false)
		if err != nil {
			log.Fatal(err)
		}
		if got := m.Mem.ReadWord(w.PAddr); got != procs*iters {
			log.Fatalf("lost updates: %d != %d", got, procs*iters)
		}
		_, bs := m.TotalStats()
		return result{end, m.Bus.Utilization(), bs.InvalidationsIn + bs.DowngradesIn + bs.Retries}
	}

	spin := run(false)
	notify := run(true)
	fmt.Printf("%d CPUs × %d critical sections each:\n", procs, iters)
	fmt.Printf("  spin (cached TAS):  %10v elapsed, bus %5.1f%%, %4d consistency conflicts\n",
		spin.elapsed, 100*spin.busUtil, spin.conflict)
	fmt.Printf("  notify (uncached):  %10v elapsed, bus %5.1f%%, %4d consistency conflicts\n",
		notify.elapsed, 100*notify.busUtil, notify.conflict)
	fmt.Printf("the notification lock avoids the cache-page ping-pong the paper warns about\n")
}
