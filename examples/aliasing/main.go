// Aliasing: two virtual pages of one address space map to the same
// physical frame. A virtually addressed cache can hold both under
// different tags, so the processor must keep itself consistent — the
// paper's "competing against itself" through its own bus monitor.
//
// Run with: go run ./examples/aliasing
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	m, err := vmp.New(vmp.Config{Processors: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		log.Fatal(err)
	}

	const va1, va2 = 0x10000, 0x20000
	if err := m.Prefault(1, []uint32{va1, va2}); err != nil {
		log.Fatal(err)
	}
	// Make va2's page a synonym of va1's.
	if err := vmp.AliasPage(m, 1, va1, va2); err != nil {
		log.Fatal(err)
	}

	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)

		c.Store(va1, 111)
		fmt.Printf("[%v] wrote 111 via va1 (page private under va1's tag)\n", c.Now())

		// Reading via va2 misses (different virtual tag). The fill's
		// read-shared targets the same frame we own privately; the miss
		// handler resolves the self-conflict (write back + downgrade)
		// before the fill completes.
		v := c.Load(va2)
		fmt.Printf("[%v] read %d via the alias va2\n", c.Now(), v)

		// Both aliases now coexist as shared copies in one cache.
		fmt.Printf("        both resident: va1=%v va2=%v\n",
			c.Board().Resident(1, va1), c.Board().Resident(1, va2))

		// Writing via va2 takes the frame private again: the other
		// alias copy must die, even though it is in the same cache.
		c.Store(va2, 222)
		fmt.Printf("[%v] wrote 222 via va2; stale va1 copy resident: %v\n",
			c.Now(), c.Board().Resident(1, va1))

		fmt.Printf("[%v] read back via va1: %d\n", c.Now(), c.Load(va1))
	})

	m.Run()
	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	bs := m.Boards[0].Stats()
	fmt.Printf("\nself-consistency cost: %d write-backs, %d aborted fills\n",
		bs.WriteBacks, bs.Retries)
}
