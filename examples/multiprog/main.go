// Multiprog: the kernel timeslices three address spaces on one
// processor board. Because the cache is tagged <ASID, virtual address>,
// a context switch is just a write of the ASID register — each task
// resumes into its own still-warm cache lines. The same run with
// flush-on-switch shows what the ASID tag saves (footnote 1 of the
// paper).
//
// Run with: go run ./examples/multiprog
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	run := func(flush bool) (vmp.SchedStats, uint64) {
		m, err := vmp.New(vmp.Config{Processors: 1})
		if err != nil {
			log.Fatal(err)
		}
		k, err := vmp.NewKernel(m, 1)
		if err != nil {
			log.Fatal(err)
		}
		var tasks []vmp.Task
		for i := 0; i < 3; i++ {
			asid := uint8(i + 1)
			refs, err := vmp.GenerateTrace("edit", uint64(i)*7+3, 30_000)
			if err != nil {
				log.Fatal(err)
			}
			for j := range refs {
				refs[j].ASID = asid
			}
			if err := m.PrefaultTrace(refs); err != nil {
				log.Fatal(err)
			}
			tasks = append(tasks, vmp.Task{ASID: asid, Refs: refs})
		}
		var st vmp.SchedStats
		k.Schedule(0, tasks, vmp.SchedPolicy{
			Quantum:       500 * vmp.Microsecond,
			SwitchInstr:   150,
			FlushOnSwitch: flush,
		}, func(s vmp.SchedStats) { st = s })
		m.Run()
		if v := m.CheckInvariants(); len(v) != 0 {
			log.Fatalf("violations: %v", v)
		}
		return st, m.Boards[0].Cache.Stats().Fills
	}

	asid, asidFills := run(false)
	flush, flushFills := run(true)

	fmt.Printf("3 tasks × 30,000 refs, 500µs quantum, one processor:\n\n")
	fmt.Printf("  ASID-tagged cache:  %9v elapsed, %4d switches, %5d cache fills\n",
		asid.Elapsed, asid.Switches, asidFills)
	fmt.Printf("  flush on switch:    %9v elapsed, %4d switches, %5d cache fills\n",
		flush.Elapsed, flush.Switches, flushFills)
	fmt.Printf("\nthe ASID register turns a context switch into one store;")
	fmt.Printf(" without it every\nswitch discards the whole cache (%.1fx more fills, %.2fx slower)\n",
		float64(flushFills)/float64(asidFills), float64(flush.Elapsed)/float64(asid.Elapsed))
}
