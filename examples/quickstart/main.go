// Quickstart: build a two-processor VMP, share a page between the
// processors through the ownership protocol, and print what happened on
// the bus.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	// A machine with the paper's default geometry: two boards, each
	// with a 128 KB 4-way virtually addressed cache of 256-byte pages,
	// sharing 8 MB of main memory over one VMEbus.
	m, err := vmp.New(vmp.Config{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		log.Fatal(err)
	}

	const shared = 0x1000

	// Processor 0 produces a value: its write miss issues a
	// read-private bus transaction, taking exclusive ownership of the
	// cache page.
	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Store(shared, 42)
		fmt.Printf("[%v] cpu0 wrote 42 (owns the page privately)\n", c.Now())

		// Stay responsive: when cpu1 reads, our bus monitor interrupts
		// us and the miss handler writes the page back and downgrades.
		c.Idle(200 * vmp.Microsecond)
	})

	// Processor 1 consumes it: its read-shared is aborted by cpu0's bus
	// monitor, cpu0 is interrupted and releases the page, and the retry
	// succeeds with the written data.
	m.RunProgram(1, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Idle(50 * vmp.Microsecond)
		v := c.Load(shared)
		fmt.Printf("[%v] cpu1 read %d through the consistency protocol\n", c.Now(), v)
	})

	end := m.Run()

	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("protocol violations: %v", v)
	}

	fmt.Printf("\nsimulated %v of machine time\n", end)
	b0, b1 := m.Boards[0].Stats(), m.Boards[1].Stats()
	fmt.Printf("cpu0: %d write-backs, %d downgrades (released its private copy)\n",
		b0.WriteBacks, b0.DowngradesIn)
	fmt.Printf("cpu1: %d aborted fills (retried after cpu0 released)\n", b1.Retries)
	fmt.Printf("bus: utilization %.2f%%\n", 100*m.Bus.Utilization())
}
