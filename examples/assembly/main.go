// Assembly: four processors run the same machine-code program — a
// test-and-set spin lock protecting a shared counter — on the simulated
// VMP. Every instruction fetch and data access goes through the
// virtually addressed caches, so the hot loop hits at processor speed
// while the lock page migrates between boards under the ownership
// protocol.
//
// Run with: go run ./examples/assembly
package main

import (
	"fmt"
	"log"

	"vmp"
)

// The spin loop uses exponential backoff. Without it, spinning
// test-and-set at four processors ping-pongs the lock page so hard
// that the actual lock *holder* can starve retrying its own fills —
// the "enormous consistency overhead" Section 5.4 warns about (the
// protocol guarantees global progress, not per-processor fairness).
const src = `
	; r10 = lock address, r11 = counter address, r5 = iterations
	li   r10, 0x20000
	li   r11, 0x20100        ; a different cache page than the lock
	addi r5, r0, 50

outer:
	addi r6, r0, 4           ; reset backoff
acquire:
	tas  r1, (r10)           ; atomic test-and-set via page ownership
	beq  r1, r0, got
	add  r7, r6, r0          ; backoff: burn r6 local iterations
back:
	addi r7, r7, -1
	bne  r7, r0, back
	add  r6, r6, r6          ; double, capped at 512
	slti r8, r6, 512
	bne  r8, r0, acquire
	addi r6, r0, 512
	b    acquire
got:
	lw   r2, 0(r11)          ; critical section
	addi r2, r2, 1
	sw   r2, 0(r11)
	sw   r0, 0(r10)          ; release
	addi r5, r5, -1
	bne  r5, r0, outer

	sys  1                   ; report: service prints r2
	halt
`

func main() {
	const procs, iters = 4, 50
	m, err := vmp.New(vmp.Config{Processors: procs})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := vmp.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d words of machine code\n\n", len(prog.Words))

	for i := 0; i < procs; i++ {
		i := i
		cfg := vmp.AsmRunConfig{
			Base: 0x10000,
			Syscall: func(c *vmp.CPU, regs *[16]uint32, n int32) {
				fmt.Printf("[%v] cpu%d done; counter was %d at its last store\n",
					c.Now(), i, regs[2])
			},
		}
		if err := vmp.RunAssembly(m, i, 1, prog, cfg, func(r vmp.AsmResult, err error) {
			if err != nil {
				log.Fatal(err)
			}
		}); err != nil {
			log.Fatal(err)
		}
	}
	m.Run()
	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}

	w, err := m.VM.Translate(1, 0x20100, false, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal counter: %d (want %d)\n", m.Mem.ReadWord(w.PAddr), procs*iters)
	cs, bs := m.TotalStats()
	fmt.Printf("cache: %d hits, %d misses; protocol: %d invalidations, %d downgrades, %d aborted fills\n",
		cs.Hits, cs.Misses, bs.InvalidationsIn, bs.DowngradesIn, bs.Retries)
}
