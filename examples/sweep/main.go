// Sweep: the Figure 4 methodology as a library user would run it —
// generate an ATUM-like trace and sweep cache size × page size,
// printing the cold-start miss-ratio grid.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	for _, profile := range vmp.TraceProfiles() {
		refs, err := vmp.GenerateTrace(profile, 11, 450_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s (%d refs)          64KB    128KB   256KB\n", profile, len(refs))
		for _, pageSize := range []int{128, 256, 512} {
			fmt.Printf("  %3dB pages:           ", pageSize)
			for _, cacheSize := range []int{64 << 10, 128 << 10, 256 << 10} {
				mr := vmp.SimulateMissRatio(vmp.CacheGeometry(cacheSize, pageSize, 4), refs)
				fmt.Printf("%6.3f%% ", 100*mr)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("paper (four VAX 8200 ATUM traces): sub-percent miss ratios at 128-256KB;")
	fmt.Println("e.g. 0.24% at 128KB with 256-byte pages, giving 87% processor performance.")
}
