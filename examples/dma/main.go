// DMA: a VME DMA device fills a buffer while processors hold cached
// copies of it. The kernel brackets the transfer with the Section 3.3
// sequence — assert-ownership flushes every cached copy, the bus
// monitor protects the region (aborting any consistency transaction on
// it) for the duration, and the entries are cleared afterwards.
//
// Run with: go run ./examples/dma
package main

import (
	"fmt"
	"log"

	"vmp"
)

func main() {
	m, err := vmp.New(vmp.Config{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	k, err := vmp.NewKernel(m, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		log.Fatal(err)
	}

	const bufVA = 0x8000
	if err := m.Prefault(1, []uint32{bufVA}); err != nil {
		log.Fatal(err)
	}
	w, err := m.VM.Translate(1, bufVA, false, false)
	if err != nil {
		log.Fatal(err)
	}
	bufPA := w.PAddr

	eth := vmp.NewDMADevice(m, "eth0")
	packet := make([]byte, 1024)
	for i := range packet {
		packet[i] = byte(i)
	}

	// CPU 0 is the driver: it caches the buffer (stale contents), then
	// performs the consistency-safe DMA receive.
	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Store(bufVA, 0xdeadbeef)
		fmt.Printf("[%v] cpu0 cached the buffer (stale: %#x)\n", c.Now(), c.Load(bufVA))

		k.DMATransfer(c, eth, bufPA, packet, true)
		fmt.Printf("[%v] cpu0 DMA receive complete\n", c.Now())

		fmt.Printf("[%v] cpu0 reads %#08x (fresh DMA data, refetched)\n", c.Now(), c.Load(bufVA))
	})

	// CPU 1 tries to read the buffer mid-transfer: its fill is aborted
	// by cpu0's protecting bus monitor until the DMA completes.
	m.RunProgram(1, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Idle(5 * vmp.Microsecond)
		v := c.Load(bufVA)
		fmt.Printf("[%v] cpu1 read %#08x after the region was released (%d aborted attempts)\n",
			c.Now(), v, c.Board().Stats().Retries)
	})

	m.Run()
	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	fmt.Printf("\nkernel performed %d DMA transfer(s); bus moved %d bytes\n",
		k.Stats().DMATransfers, m.Bus.Stats().BytesMoved)
}
