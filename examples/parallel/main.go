// Parallel: a well-behaved parallel application on VMP — the kind of
// workload the paper's introduction argues shared-memory multis are
// for. Four processors histogram a shared input array: the input is
// read-shared (each cache keeps its own copy for free), the partial
// buckets are per-processor private pages (no contention), and only the
// final merge takes a lock. Speedup is printed against the
// single-processor run.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"vmp"
)

const (
	inputBase   = 0x100000
	resultBase  = 0x300000
	partialBase = 0x400000 // per-CPU partials, one VM page apart
	words       = 12_000
	buckets     = 16
)

func run(procs int) vmp.Time {
	m, err := vmp.New(vmp.Config{Processors: procs})
	if err != nil {
		log.Fatal(err)
	}
	k, err := vmp.NewKernel(m, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		log.Fatal(err)
	}
	// Host-side setup: fill the input array through the page tables.
	var pages []uint32
	for off := uint32(0); off < words*4; off += 4096 {
		pages = append(pages, inputBase+off)
	}
	pages = append(pages, resultBase)
	for i := 0; i < procs; i++ {
		pages = append(pages, partialBase+uint32(i)*0x1000)
	}
	if err := m.Prefault(1, pages); err != nil {
		log.Fatal(err)
	}
	for i := uint32(0); i < words; i++ {
		w, err := m.VM.Translate(1, inputBase+i*4, true, false)
		if err != nil {
			log.Fatal(err)
		}
		m.Mem.WriteWord(w.PAddr, i*2654435761) // a scrambled sequence
	}

	lock, err := k.NewNotifyLock()
	if err != nil {
		log.Fatal(err)
	}
	bar, err := k.NewBarrier(procs)
	if err != nil {
		log.Fatal(err)
	}

	per := words / procs
	for p := 0; p < procs; p++ {
		p := p
		m.RunProgram(p, func(c *vmp.CPU) {
			c.SetASID(1)
			mine := partialBase + uint32(p)*0x1000
			lo, hi := uint32(p*per), uint32((p+1)*per)
			if p == procs-1 {
				hi = words
			}
			for i := lo; i < hi; i++ {
				v := c.Load(inputBase + i*4)
				b := v % buckets
				c.Store(mine+b*4, c.Load(mine+b*4)+1)
				c.Compute(3) // the "work" per element
			}
			// Merge under the kernel lock.
			lock.Acquire(c)
			for b := uint32(0); b < buckets; b++ {
				c.Store(resultBase+b*4, c.Load(resultBase+b*4)+c.Load(mine+b*4))
			}
			lock.Release(c)
			bar.Wait(c)
		})
	}
	end := m.Run()
	if v := m.CheckInvariants(); len(v) != 0 {
		log.Fatalf("violations: %v", v)
	}
	// Verify: bucket counts sum to the input size.
	total := uint32(0)
	for b := uint32(0); b < buckets; b++ {
		w, _ := m.VM.Translate(1, resultBase+b*4, false, false)
		total += m.Mem.ReadWord(w.PAddr)
	}
	if total != words {
		log.Fatalf("histogram lost elements: %d != %d", total, words)
	}
	return end
}

func main() {
	base := run(1)
	fmt.Printf("histogram of %d words, %d buckets:\n\n", words, buckets)
	fmt.Printf("  %d CPU:  %10v   speedup 1.00\n", 1, base)
	for _, procs := range []int{2, 4} {
		el := run(procs)
		fmt.Printf("  %d CPUs: %10v   speedup %.2f\n", procs, el, float64(base)/float64(el))
	}
	fmt.Println("\nshared input is read-shared, partials are private pages, only the")
	fmt.Println("merge synchronizes: the \"good behavior\" Section 5.4 asks software for.")
}
