package vmp_test

import (
	"testing"

	"vmp"
)

func TestFacadeQuickstart(t *testing.T) {
	m, err := vmp.New(vmp.Config{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		t.Fatal(err)
	}
	var got uint32
	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Store(0x1000, 42)
	})
	m.RunProgram(1, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Idle(100 * vmp.Microsecond)
		got = c.Load(0x1000)
	})
	m.Run()
	if got != 42 {
		t.Errorf("second processor read %d, want 42", got)
	}
	if v := m.CheckInvariants(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestFacadeTraceRun(t *testing.T) {
	m, err := vmp.New(vmp.Config{
		Processors: 1,
		Cache:      vmp.CacheGeometry(128<<10, 256, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := vmp.GenerateTrace("edit", 3, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnsureSpace(1); err != nil {
		t.Fatal(err)
	}
	m.RunTrace(0, vmp.SliceSource(refs))
	end := m.Run()
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	if p := m.Performance(0); p <= 0 || p >= 1 {
		t.Errorf("performance %v", p)
	}
}

func TestFacadeProfiles(t *testing.T) {
	ps := vmp.TraceProfiles()
	if len(ps) != 4 {
		t.Fatalf("profiles: %v", ps)
	}
	for _, p := range ps {
		refs, err := vmp.GenerateTrace(p, 1, 100)
		if err != nil || len(refs) != 100 {
			t.Errorf("%s: %v, %d refs", p, err, len(refs))
		}
	}
	if _, err := vmp.GenerateTrace("bogus", 1, 10); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestFacadeDefaults(t *testing.T) {
	tm := vmp.DefaultTiming()
	if tm.InstrTime <= 0 || tm.RefsPerInstr <= 0 {
		t.Error("bad default timing")
	}
	cfg := vmp.CacheGeometry(256<<10, 512, 4)
	if cfg.Size() != 256<<10 || cfg.PageSize != 512 {
		t.Errorf("geometry %+v", cfg)
	}
}

func TestFacadeAliasPage(t *testing.T) {
	m, err := vmp.New(vmp.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureSpace(1)
	if err := m.Prefault(1, []uint32{0x10000, 0x20000}); err != nil {
		t.Fatal(err)
	}
	if err := vmp.AliasPage(m, 1, 0x10000, 0x20000); err != nil {
		t.Fatal(err)
	}
	var got uint32
	m.RunProgram(0, func(c *vmp.CPU) {
		c.SetASID(1)
		c.Store(0x10000, 77)
		got = c.Load(0x20000)
	})
	m.Run()
	if got != 77 {
		t.Errorf("alias read %d, want 77", got)
	}
}

func TestFacadeSimulateMissRatio(t *testing.T) {
	refs, err := vmp.GenerateTrace("edit", 5, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	small := vmp.SimulateMissRatio(vmp.CacheGeometry(64<<10, 256, 4), refs)
	big := vmp.SimulateMissRatio(vmp.CacheGeometry(256<<10, 256, 4), refs)
	if small <= big {
		t.Errorf("miss ratio did not fall with cache size: %v vs %v", small, big)
	}
}

func TestFacadeAssembly(t *testing.T) {
	m, err := vmp.New(vmp.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vmp.Assemble("addi r1, r0, 42\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	var res vmp.AsmResult
	if err := vmp.RunAssembly(m, 0, 1, prog, vmp.AsmRunConfig{Base: 0x1000},
		func(r vmp.AsmResult, err error) {
			if err != nil {
				t.Error(err)
			}
			res = r
		}); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if res.Regs[1] != 42 {
		t.Errorf("r1 = %d", res.Regs[1])
	}
}

func TestFacadeKernelScheduler(t *testing.T) {
	m, err := vmp.New(vmp.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	k, err := vmp.NewKernel(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := vmp.GenerateTrace("edit", 1, 5000)
	m.PrefaultTrace(refs)
	var st vmp.SchedStats
	k.Schedule(0, []vmp.Task{{ASID: 1, Refs: refs}}, vmp.SchedPolicy{Quantum: vmp.Millisecond},
		func(s vmp.SchedStats) { st = s })
	m.Run()
	if st.Refs != 5000 {
		t.Errorf("refs %d", st.Refs)
	}
}
